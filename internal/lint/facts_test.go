package lint

// facts_test validates the interprocedural summaries against the real
// module, not fixtures: before the facts layer, bufleak carried a
// hardcoded table of ownership-transfer sinks (Endpoint.deliver,
// Endpoint.Send, decodeStage.submit, pktRing.storeOwned, outMsg.release).
// The table is gone; these tests pin that inference rederives every
// entry, so a regression in the taint walk surfaces here and not as a
// silent hole in bufleak.

import (
	"go/types"
	"path/filepath"
	"testing"
)

// factsUniverse loads the given module directories as analysis units and
// computes facts over them plus every retained dependency package,
// mirroring Run. The returned map is keyed by the relative dir.
func factsUniverse(t *testing.T, rels ...string) (map[string]*Package, *Facts) {
	t.Helper()
	loader := fixtureLoader(t)
	byRel := map[string]*Package{}
	var units []*Package
	for _, rel := range rels {
		dir := filepath.Join(loader.ModuleDir, filepath.FromSlash(rel))
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", rel, err)
		}
		if len(pkgs) == 0 {
			t.Fatalf("LoadDir(%s): no packages", rel)
		}
		units = append(units, pkgs...)
		byRel[rel] = pkgs[0] // the directory's package; externals follow
	}
	universe := append(append([]*Package{}, units...), loader.DepPackages()...)
	return byRel, ComputeFacts(loader.Fset, universe)
}

// methodFact looks a method up by type and name in pkg's scope and
// returns its computed summary.
func methodFact(t *testing.T, facts *Facts, pkg *Package, typeName, method string) *FuncFact {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(typeName)
	if obj == nil {
		t.Fatalf("%s: no type %s in scope", pkg.Path, typeName)
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("%s.%s is not a named type", pkg.Path, typeName)
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			ft := facts.Summary(m)
			if ft == nil {
				t.Fatalf("no summary for %s.%s.%s", pkg.Path, typeName, method)
			}
			return ft
		}
	}
	t.Fatalf("%s.%s has no method %s", pkg.Path, typeName, method)
	return nil
}

func TestInferredTransferFacts(t *testing.T) {
	pkgs, facts := factsUniverse(t, "internal/transport", "internal/udt", "internal/core")

	cases := []struct {
		rel, typ, method string
		param            int // -1: receiver transfer
	}{
		{"internal/transport", "Endpoint", "deliver", 1},
		{"internal/transport", "Endpoint", "Send", 2},
		{"internal/transport", "outMsg", "release", -1},
		{"internal/udt", "pktRing", "storeOwned", 1},
		{"internal/core", "decodeStage", "submit", 1},
	}
	for _, c := range cases {
		ft := methodFact(t, facts, pkgs[c.rel], c.typ, c.method)
		if c.param < 0 {
			if !ft.RecvTransfer {
				t.Errorf("%s.%s: RecvTransfer = false, want inferred receiver transfer", c.typ, c.method)
			}
			continue
		}
		if c.param >= len(ft.TransferParams) || !ft.TransferParams[c.param] {
			t.Errorf("%s.%s: TransferParams = %v, want transfer at param %d",
				c.typ, c.method, ft.TransferParams, c.param)
		}
	}

	// Read-only parameters must stay non-transfer, or bufleak would
	// treat every helper call as a release: shardFor only hashes and
	// indexes with dest, storing nothing.
	shardFor := methodFact(t, facts, pkgs["internal/transport"], "Endpoint", "shardFor")
	if shardFor.TransferParams[1] {
		t.Error("Endpoint.shardFor: dest parameter inferred as transfer; inference is over-tainting")
	}
}

// TestGoroutineFacts pins a lifecycle summary gorolife leans on: the
// WorkPool worker signals its WaitGroup through a deferred call on a
// generic method, exercising both the transitive Done detection and the
// Origin mapping for instantiated call sites.
func TestGoroutineFacts(t *testing.T) {
	pkgs, facts := factsUniverse(t, "internal/kompics")

	worker := methodFact(t, facts, pkgs["internal/kompics"], "WorkPool", "worker")
	if !worker.WGDone {
		t.Error("WorkPool.worker: WGDone = false, want Done detected through deferred call")
	}
}
