package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lock-fact extraction: the per-function walk that feeds the lockorder
// analyzer. It mirrors locksend's linear held-set scan but tracks mutex
// *classes* (declaration identity, not instance spelling), records an
// edge whenever a class is acquired while another is held, follows calls
// through the facts store (a callee's Acquires induce edges under the
// caller's held set; its HeldAtExit extends the caller's held set — that
// is how LockB()/UnlockB() helper pairs and cross-package cycles become
// visible), and honours the ...Locked caller-holds convention by seeding
// the held set with the receiver's mutex-field classes.
//
// Same-class re-acquisition is the stripe hazard: locking shard[j].mu
// while shard[i].mu is held deadlocks against a concurrent sweep in the
// opposite order. The one provably safe shape is the lock-all loop that
// walks a slice in ascending index order — the same site re-acquiring
// its class across iterations of a slice/array loop (or an i++ counter
// loop) is exempt; a map range is not, because map iteration order is
// deliberately unspecified.

// heldSrc records how a held class was acquired.
type heldSrc struct {
	pos      token.Pos // acquire site, for the ascending-loop exemption
	deferred bool      // unlock is deferred: not held at (normal) exit
	assumed  bool      // ...Locked entry assumption: the caller holds it
}

type lockFactScan struct {
	f    *Facts
	rec  *funcRec
	fact *FuncFact
	info *types.Info
	// ordered is non-zero while re-scanning the body of a provably
	// ascending loop (second pass with loop-carried locks held).
	ordered int
}

// lockFacts fills nf's Acquires/HeldAtExit/Edges from rec's body.
func (f *Facts) lockFacts(rec *funcRec, nf *FuncFact) {
	lf := &lockFactScan{f: f, rec: rec, fact: nf, info: rec.pkg.Info}
	held := map[MutexClass]heldSrc{}
	for _, cls := range lf.assumedHeld() {
		held[cls] = heldSrc{assumed: true}
	}
	if !lf.scanList(rec.decl.Body.List, held) {
		lf.recordExit(held)
	}
}

// assumedHeld returns the mutex-field classes of the receiver struct for
// ...Locked methods: the documented caller-holds convention (shardlock
// skips their bodies; here their call sites resolve against the caller's
// held set, so the classes are assumed, not acquired).
func (lf *lockFactScan) assumedHeld() []MutexClass {
	if !hasSuffixLocked(lf.rec.fn.Name()) {
		return nil
	}
	sig, _ := lf.rec.fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []MutexClass
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if isSyncMutex(fld.Type()) {
			out = append(out, fieldClass(named, fld))
		}
	}
	return out
}

func fieldClass(owner *types.Named, fld *types.Var) MutexClass {
	pkg := ""
	if fld.Pkg() != nil {
		pkg = fld.Pkg().Path()
	}
	return MutexClass(pkg + "." + owner.Obj().Name() + "." + fld.Name())
}

// classify resolves the mutex class behind the receiver expression of a
// sync lock/unlock call ("c.mu", "mu", "shards[i].mu", an embedded
// promotion).
func (lf *lockFactScan) classify(e ast.Expr) MutexClass {
	e = ast.Unparen(e)
	switch t := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := lf.info.Uses[t.Sel].(*types.Var); ok {
			pkg := ""
			if v.Pkg() != nil {
				pkg = v.Pkg().Path()
			}
			if v.IsField() {
				owner := namedTypeName(lf.info.TypeOf(t.X))
				if owner == "" {
					owner = "<anon>"
				}
				return MutexClass(pkg + "." + owner + "." + v.Name())
			}
			return MutexClass(pkg + "." + v.Name())
		}
	case *ast.Ident:
		if v, ok := lf.info.Uses[t].(*types.Var); ok {
			if !isSyncMutex(v.Type()) {
				// Embedded promotion: c.Lock() on a struct embedding the
				// mutex — the class belongs to the embedding type.
				if named, ok := derefNamed(v.Type()); ok {
					pkg := ""
					if named.Obj().Pkg() != nil {
						pkg = named.Obj().Pkg().Path()
					}
					return MutexClass(pkg + "." + named.Obj().Name() + ".Mutex")
				}
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return MutexClass(v.Pkg().Path() + "." + v.Name())
			}
			pkg := ""
			if v.Pkg() != nil {
				pkg = v.Pkg().Path()
			}
			return MutexClass(pkg + "." + lf.rec.fn.Name() + "." + v.Name())
		}
	case *ast.IndexExpr:
		return lf.classify(t.X) // mus[i]: the array/slice is the domain
	}
	pkg := ""
	if lf.rec.fn.Pkg() != nil {
		pkg = lf.rec.fn.Pkg().Path()
	}
	return MutexClass(pkg + ".expr:" + types.ExprString(e))
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// classLockCall matches mu.Lock/RLock (isLock) and mu.Unlock/RUnlock on
// sync mutexes, resolving the receiver to its class. RLock shares its
// mutex's class: reader/writer distinction does not change cycle
// potential against a writer.
func (lf *lockFactScan) classLockCall(e ast.Expr) (cls MutexClass, isLock, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := calleeFuncOf(lf.info, call)
	switch {
	case methodIs(fn, "sync", "Mutex", "Lock"),
		methodIs(fn, "sync", "RWMutex", "Lock"),
		methodIs(fn, "sync", "RWMutex", "RLock"):
		isLock = true
	case methodIs(fn, "sync", "Mutex", "Unlock"),
		methodIs(fn, "sync", "RWMutex", "Unlock"),
		methodIs(fn, "sync", "RWMutex", "RUnlock"):
		isLock = false
	default:
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return lf.classify(sel.X), isLock, true
}

func (lf *lockFactScan) addEdge(from, to MutexClass, pos token.Pos) {
	for _, e := range lf.fact.Edges {
		if e.From == from && e.To == to {
			return
		}
	}
	lf.fact.Edges = append(lf.fact.Edges, LockEdge{From: from, To: to, Pos: pos})
}

// acquire records locking cls at pos against the current held set.
func (lf *lockFactScan) acquire(cls MutexClass, pos token.Pos, held map[MutexClass]heldSrc) {
	lf.fact.Acquires[cls] = true
	for h := range held {
		if h == cls {
			src := held[h]
			// Ascending-sweep exemption: the same site re-acquiring its
			// class on the next iteration of an ordered loop.
			if lf.ordered > 0 && src.pos == pos {
				continue
			}
			lf.addEdge(cls, cls, pos)
			continue
		}
		lf.addEdge(h, cls, pos)
	}
	held[cls] = heldSrc{pos: pos}
}

// recordExit folds the held set into HeldAtExit at a normal exit.
func (lf *lockFactScan) recordExit(held map[MutexClass]heldSrc) {
	for cls, src := range held {
		if !src.deferred && !src.assumed {
			lf.fact.HeldAtExit[cls] = true
		}
	}
}

// handleCalls folds summarized callees anywhere in e into the scan:
// edges from every held class to everything the callee acquires, and the
// callee's HeldAtExit extends the held set. Function literals are skipped
// (they run when invoked); lock/unlock calls are handled at statement
// level.
func (lf *lockFactScan) handleCalls(e ast.Expr, held map[MutexClass]heldSrc) {
	if e == nil {
		return
	}
	goTargets := map[*ast.CallExpr]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goTargets[t.Call] = true
		case *ast.CallExpr:
			if goTargets[t] {
				return true
			}
			if _, _, ok := lf.classLockCall(t); ok {
				return true
			}
			ft := lf.f.Summary(calleeFuncOf(lf.info, t))
			if ft == nil {
				return true
			}
			for b := range ft.Acquires {
				lf.fact.Acquires[b] = true
				for h := range held {
					lf.addEdge(h, b, t.Pos())
				}
			}
			for c := range ft.HeldAtExit {
				if _, ok := held[c]; !ok {
					held[c] = heldSrc{pos: t.Pos()}
				}
			}
		}
		return true
	})
}

func (lf *lockFactScan) scanList(list []ast.Stmt, held map[MutexClass]heldSrc) bool {
	for _, s := range list {
		if lf.scanStmt(s, held) {
			return true
		}
	}
	return false
}

func (lf *lockFactScan) scanStmt(s ast.Stmt, held map[MutexClass]heldSrc) (terminated bool) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		if cls, isLock, ok := lf.classLockCall(t.X); ok {
			if isLock {
				lf.acquire(cls, t.X.Pos(), held)
			} else {
				delete(held, cls)
			}
			return false
		}
		lf.handleCalls(t.X, held)
		if isPanicCall(t.X) {
			return true
		}
		return false

	case *ast.DeferStmt:
		if cls, isLock, ok := lf.classLockCall(t.Call); ok && !isLock {
			if src, have := held[cls]; have {
				src.deferred = true
				held[cls] = src
			}
			return false
		}
		// A deferred call's own acquisitions happen at exit with an
		// unknowable held set; count them as Acquires without edges.
		if ft := lf.f.Summary(calleeFuncOf(lf.info, t.Call)); ft != nil {
			for b := range ft.Acquires {
				lf.fact.Acquires[b] = true
			}
		}
		for _, arg := range t.Call.Args {
			lf.handleCalls(arg, held)
		}
		return false

	case *ast.GoStmt:
		for _, arg := range t.Call.Args {
			lf.handleCalls(arg, held)
		}
		return false

	case *ast.SendStmt:
		lf.handleCalls(t.Chan, held)
		lf.handleCalls(t.Value, held)
		return false

	case *ast.IncDecStmt:
		lf.handleCalls(t.X, held)
		return false

	case *ast.AssignStmt:
		for _, rhs := range t.Rhs {
			lf.handleCalls(rhs, held)
		}
		return false

	case *ast.ReturnStmt:
		for _, r := range t.Results {
			lf.handleCalls(r, held)
		}
		lf.recordExit(held)
		return true

	case *ast.BranchStmt:
		return true

	case *ast.IfStmt:
		if t.Init != nil {
			lf.scanStmt(t.Init, held)
		}
		lf.handleCalls(t.Cond, held)
		thenHeld := copyHeldSrc(held)
		thenTerm := lf.scanList(t.Body.List, thenHeld)
		elseHeld := copyHeldSrc(held)
		elseTerm := false
		if t.Else != nil {
			elseTerm = lf.scanStmt(t.Else, elseHeld)
		}
		var arms []map[MutexClass]heldSrc
		if !thenTerm {
			arms = append(arms, thenHeld)
		}
		if !elseTerm {
			arms = append(arms, elseHeld)
		}
		if len(arms) == 0 {
			return true
		}
		reconcileHeldSrc(held, arms...)
		return false

	case *ast.BlockStmt:
		return lf.scanList(t.List, held)

	case *ast.LabeledStmt:
		return lf.scanStmt(t.Stmt, held)

	case *ast.ForStmt:
		if t.Init != nil {
			lf.scanStmt(t.Init, held)
		}
		lf.handleCalls(t.Cond, held)
		lf.scanLoop(t.Body, held, orderedFor(t))
		// `for {}` without a break never falls through: every exit is a
		// return inside the body (the worker-loop shape), so the held set
		// here must not reach a phantom function exit.
		return t.Cond == nil && !hasLoopBreak(t.Body)

	case *ast.RangeStmt:
		lf.handleCalls(t.X, held)
		return lf.scanLoop(t.Body, held, orderedRange(lf.info, t))

	case *ast.SwitchStmt:
		if t.Init != nil {
			lf.scanStmt(t.Init, held)
		}
		lf.handleCalls(t.Tag, held)
		lf.scanClauses(t.Body, held)
		return false

	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			lf.scanStmt(t.Init, held)
		}
		lf.scanClauses(t.Body, held)
		return false

	case *ast.SelectStmt:
		lf.scanClauses(t.Body, held)
		return false
	}
	return false
}

// scanLoop scans a loop body; when the body leaves locks held that were
// not held on entry (a lock-all sweep), it re-scans once with those
// loop-carried locks held, so iteration-crossing edges — including the
// same-class stripe edge — are observed. ordered loops exempt the
// same-site re-acquisition.
func (lf *lockFactScan) scanLoop(body *ast.BlockStmt, held map[MutexClass]heldSrc, ordered bool) bool {
	bodyHeld := copyHeldSrc(held)
	if lf.scanList(body.List, bodyHeld) {
		return false
	}
	carried := false
	for cls := range bodyHeld {
		if _, ok := held[cls]; !ok {
			carried = true
			break
		}
	}
	if carried {
		second := copyHeldSrc(bodyHeld)
		if ordered {
			lf.ordered++
		}
		lf.scanList(body.List, second)
		if ordered {
			lf.ordered--
		}
	}
	reconcileHeldSrc(held, bodyHeld)
	return false
}

// orderedFor recognizes the counting loop shape `for i := 0; i < n; i++`,
// whose iteration order is provably ascending.
func orderedFor(t *ast.ForStmt) bool {
	inc, ok := t.Post.(*ast.IncDecStmt)
	return ok && inc.Tok == token.INC
}

// orderedRange reports whether the range iterates a slice or array —
// ascending index order by the language spec. Map ranges are
// deliberately excluded.
func orderedRange(info *types.Info, t *ast.RangeStmt) bool {
	typ := info.TypeOf(t.X)
	if typ == nil {
		return false
	}
	u := typ.Underlying()
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem().Underlying()
	}
	switch u.(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

func (lf *lockFactScan) scanClauses(body *ast.BlockStmt, held map[MutexClass]heldSrc) {
	var arms []map[MutexClass]heldSrc
	for _, c := range body.List {
		armHeld := copyHeldSrc(held)
		var term bool
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				lf.handleCalls(e, armHeld)
			}
			term = lf.scanList(cl.Body, armHeld)
		case *ast.CommClause:
			if cl.Comm != nil {
				lf.scanStmt(cl.Comm, armHeld)
			}
			term = lf.scanList(cl.Body, armHeld)
		default:
			continue
		}
		if !term {
			arms = append(arms, armHeld)
		}
	}
	if len(arms) > 0 {
		reconcileHeldSrc(held, arms...)
	}
}

func copyHeldSrc(held map[MutexClass]heldSrc) map[MutexClass]heldSrc {
	out := make(map[MutexClass]heldSrc, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// reconcileHeldSrc merges arm states optimistically, like locksend's
// reconcile: a class stays (or becomes) held only when every live arm
// holds it. A deferred-unlock mark in any arm survives the merge so the
// class stays out of HeldAtExit.
func reconcileHeldSrc(held map[MutexClass]heldSrc, arms ...map[MutexClass]heldSrc) {
	for cls := range held {
		for _, arm := range arms {
			if _, ok := arm[cls]; !ok {
				delete(held, cls)
				break
			}
		}
	}
	if len(arms) == 0 {
		return
	}
	for cls, src := range arms[0] {
		all := true
		for _, arm := range arms[1:] {
			if _, ok := arm[cls]; !ok {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		merged := src
		if cur, ok := held[cls]; ok {
			merged = cur
		}
		for _, arm := range arms {
			if s, ok := arm[cls]; ok && s.deferred {
				merged.deferred = true
			}
		}
		held[cls] = merged
	}
}
