package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives. kmlint findings are meant to be fixed; when a
// finding is a false positive the code cannot express its way out of
// (e.g. buffer ownership decided by pointer aliasing the analyzer cannot
// see), it is silenced with an audited directive that names the check and
// records why:
//
//	//kmlint:ignore bufleak dst's array is owned by out when they alias
//
// A line directive suppresses matching findings on its own line and, when
// the comment stands alone, on the line directly below — the two places
// gofmt will keep it. A file directive anywhere in the file (by
// convention, next to the package clause) suppresses the named check for
// the whole file:
//
//	//kmlint:ignore-file simdet integration test drives real sockets
//
// Directives without a check name or a reason are themselves reported, as
// are directives that no longer suppress anything; stale ignores are how
// audited exceptions rot.

const (
	linePrefix = "//kmlint:ignore "
	filePrefix = "//kmlint:ignore-file "
)

// directive is one parsed kmlint:ignore comment.
type directive struct {
	pos       token.Position
	check     string
	reason    string
	fileWide  bool
	malformed string // non-empty when the directive cannot be honoured
	used      bool
}

// collectDirectives extracts every kmlint directive from the files.
func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirective(c.Text)
				if d == nil {
					continue
				}
				d.pos = fset.Position(c.Pos())
				out = append(out, d)
			}
		}
	}
	return out
}

// parseDirective returns nil for non-directive comments and a (possibly
// malformed) directive otherwise. The exact "//kmlint:" prefix is
// required — "// kmlint:" is prose, matching the compiler's treatment of
// //go: directives.
func parseDirective(text string) *directive {
	// Comments in CRLF files can carry the \r; a directive on the last
	// line of a file without a trailing newline does not. Strip it so the
	// reason (and a reasonless directive's emptiness) parse identically.
	text = strings.TrimRight(text, "\r")
	var rest string
	var fileWide bool
	switch {
	case strings.HasPrefix(text, filePrefix):
		rest, fileWide = text[len(filePrefix):], true
	case strings.HasPrefix(text, linePrefix):
		rest = text[len(linePrefix):]
	case text == strings.TrimSuffix(linePrefix, " ") || text == strings.TrimSuffix(filePrefix, " "):
		return &directive{malformed: "kmlint:ignore needs a check name and a reason"}
	default:
		return nil
	}
	check, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
	d := &directive{check: check, reason: strings.TrimSpace(reason), fileWide: fileWide}
	switch {
	case d.check == "":
		d.malformed = "kmlint:ignore needs a check name and a reason"
	case AnalyzerByName(d.check) == nil:
		d.malformed = "kmlint:ignore names unknown check " + quoteCheck(d.check)
	case d.reason == "":
		d.malformed = "kmlint:ignore " + d.check + " needs a reason; suppressions are audited"
	}
	return d
}

// quoteCheck wraps a (identifier-shaped) check name for a message.
func quoteCheck(s string) string { return `"` + s + `"` }

// applySuppressions drops diagnostics covered by a directive, marking the
// directives that did the covering. With keepSuppressed, covered findings
// stay in the result marked Suppressed with the directive recorded in
// IgnoredBy — the -json audit trail.
func applySuppressions(diags []Diagnostic, directives []*directive, keepSuppressed bool) []Diagnostic {
	var kept []Diagnostic
	for _, diag := range diags {
		var by *directive
		for _, d := range directives {
			if d.malformed != "" || d.check != diag.Check || d.pos.Filename != diag.Pos.Filename {
				continue
			}
			if d.fileWide || d.pos.Line == diag.Pos.Line || d.pos.Line+1 == diag.Pos.Line {
				d.used = true
				if by == nil {
					by = d
				}
			}
		}
		if by == nil {
			kept = append(kept, diag)
			continue
		}
		if keepSuppressed {
			diag.Suppressed = true
			diag.IgnoredBy = fmt.Sprintf("%s:%d (%s)", by.pos.Filename, by.pos.Line, by.reason)
			kept = append(kept, diag)
		}
	}
	return kept
}

// directiveProblems reports malformed directives always and unused ones
// when asked (only meaningful after the full suite ran).
func directiveProblems(directives []*directive, reportUnused bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range directives {
		switch {
		case d.malformed != "":
			out = append(out, Diagnostic{Pos: d.pos, Check: "kmlint", Message: d.malformed})
		case reportUnused && !d.used:
			out = append(out, Diagnostic{
				Pos:     d.pos,
				Check:   "kmlint",
				Message: "unused kmlint:ignore " + d.check + " directive (stale suppression?); audited reason was: " + d.reason,
			})
		}
	}
	return out
}
