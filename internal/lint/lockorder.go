package lint

import (
	"sort"
	"strings"
)

// LockOrder checks the module-wide lock-acquisition graph for cycles.
// The facts layer records an edge A→B whenever mutex class B is acquired
// — directly, or inside any transitively summarized callee, in this
// package or another — while class A is held. Two findings exist:
//
//   - A cycle through distinct classes: some goroutine can hold A wanting
//     B while another holds B wanting A. The canonical clean patterns are
//     sequential acquisition (fallbackToTCP locks each sendShard, then
//     releases it, before touching the next) and deferred-unlock getters
//     whose critical section ends before the caller takes its next lock —
//     neither produces an edge.
//   - Same-class (stripe) nesting: shard[j].mu acquired while shard[i].mu
//     is held. Stripes are interchangeable instances of one lock domain,
//     so nesting them is safe only in a canonical order; the one shape
//     the analyzer can prove — an ascending slice/array sweep
//     re-acquiring at the same site each iteration (closeInbound's
//     quiescence loop) — is exempt, everything else is flagged.
//
// Edges are reported at their acquisition site, restricted to files of
// the package under analysis so a module run reports each edge exactly
// once, in the package that contains it.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the module's lock-acquisition graph must stay acyclic; stripe locks nest only in ascending index order",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	edges := pass.Facts.LockEdges()
	if len(edges) == 0 {
		return
	}

	adj := map[MutexClass][]MutexClass{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	comp := lockSCCs(adj)

	inPkg := map[string]bool{}
	for _, f := range pass.Files {
		inPkg[pass.Fset.Position(f.Pos()).Filename] = true
	}

	for _, e := range edges {
		if !inPkg[pass.Fset.Position(e.Pos).Filename] {
			continue
		}
		if e.From == e.To {
			pass.Reportf(e.Pos,
				"same-class lock nesting: %s acquired while another %s is held; stripe locks nest only in a provable ascending sweep — release before the next acquisition or lock in index order",
				e.To.short(), e.From.short())
			continue
		}
		if c, ok := comp[e.From]; ok && c == comp[e.To] {
			pass.Reportf(e.Pos,
				"lock-order cycle: %s acquired while holding %s, but the module also acquires them in the reverse order (%s); pick one global order",
				e.To.short(), e.From.short(), cycleString(adj, comp, e.To, e.From))
		}
	}
}

// lockSCCs condenses the class graph (iterative Tarjan over sorted
// classes for determinism) and returns each class's component id.
// Classes in a component of size ≥ 2 are on a cycle.
func lockSCCs(adj map[MutexClass][]MutexClass) map[MutexClass]int {
	classes := map[MutexClass]bool{}
	for from, tos := range adj {
		classes[from] = true
		for _, to := range tos {
			classes[to] = true
		}
	}
	order := make([]MutexClass, 0, len(classes))
	for c := range classes {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	index := map[MutexClass]int{}
	lowlink := map[MutexClass]int{}
	onStack := map[MutexClass]bool{}
	comp := map[MutexClass]int{}
	compSize := map[int]int{}
	var stack []MutexClass
	next, ncomp := 1, 0

	var strongconnect func(v MutexClass)
	strongconnect = func(v MutexClass) {
		index[v], lowlink[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strongconnect(w)
				lowlink[v] = min(lowlink[v], lowlink[w])
			} else if onStack[w] {
				lowlink[v] = min(lowlink[v], index[w])
			}
		}
		if lowlink[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				compSize[ncomp]++
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, c := range order {
		if index[c] == 0 {
			strongconnect(c)
		}
	}
	// Only multi-class components mark cycles; drop singletons so the
	// comp[from] == comp[to] test can't fire on an acyclic edge.
	for c, id := range comp {
		if compSize[id] < 2 {
			delete(comp, c)
		}
	}
	return comp
}

// cycleString renders the return path that closes the cycle: a shortest
// walk from `from` back to `to` inside the component, e.g.
// "b.mu -> a.mu". BFS over sorted adjacency keeps it deterministic.
func cycleString(adj map[MutexClass][]MutexClass, comp map[MutexClass]int, from, to MutexClass) string {
	want := comp[from]
	prev := map[MutexClass]MutexClass{from: from}
	queue := []MutexClass{from}
	for len(queue) > 0 && prev[to] == "" {
		v := queue[0]
		queue = queue[1:]
		next := append([]MutexClass(nil), adj[v]...)
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, w := range next {
			if comp[w] != want {
				continue
			}
			if _, seen := prev[w]; seen {
				continue
			}
			prev[w] = v
			queue = append(queue, w)
		}
	}
	if _, ok := prev[to]; !ok {
		return from.short() + " -> ... -> " + to.short()
	}
	var path []string
	for v := to; ; v = prev[v] {
		path = append(path, v.short())
		if v == from {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return strings.Join(path, " -> ")
}
