// Package data implements the adaptive transport-selection system of §IV:
// the DATA pseudo-protocol. An interceptor component queues outgoing data
// messages per destination and releases them to the network layer at an
// adaptive rate, stamping each with TCP or UDT as chosen by the current
// protocol selection policy (PSP). The target TCP/UDT mix is prescribed by
// a protocol ratio policy (PRP), which may be static or an online
// Sarsa(λ) learner rewarded with observed throughput.
//
// Protocol selection policies (§IV-B):
//
//   - RandomSelection draws each message's protocol from a Bernoulli
//     distribution — unbiased in the long run but skewed over short
//     windows (figure 1), which distorts the learner's rewards.
//   - PatternSelection emits a deterministic interleaving (the p-pattern
//     or p+1-pattern, whichever leaves the smaller rest) whose running
//     ratio stays close to the target at every prefix and is exact over a
//     full pattern.
//
// Protocol ratio policies (§IV-C):
//
//   - StaticRatio pins the ratio (pure TCP, pure UDT, any fixed mix).
//   - TDRatioLearner adapts the ratio each episode with Sarsa(λ) over the
//     discretised ratio space (κ = 1/5 → 11 states, 5 actions), using one
//     of the three rl estimators (matrix, model-based, quadratic
//     approximation — figures 4, 5, 6).
//
// The pure state machines here are shared verbatim between the runtime
// middleware (DataNetwork component) and the netsim experiment harness.
package data
