package data_test

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/data"
)

// The pattern construction of §IV-B4: one third UDT yields the period-3
// interleaving (ppu)* — exact over every full period.
func ExampleBuildPattern() {
	pattern := data.BuildPattern(data.MustRatio(1, 3))
	for i := 0; i < pattern.Len(); i++ {
		fmt.Print(pattern.At(i), " ")
	}
	fmt.Println("rest:", pattern.Rest())
	// Output: TCP TCP UDT rest: 0
}

// Ratios convert freely between the paper's three representations.
func ExampleRatio() {
	r := data.MustRatio(4, 5) // 4 UDT messages out of every 5
	fmt.Printf("fraction=%.1f balance=%+.1f\n", r.UDTFraction(), r.Balance())
	p, q, udtMinority := r.MinorityShare()
	fmt.Printf("pattern form: %d minority per %d majority (udt minority: %v)\n",
		p, q, udtMinority)
	// Output:
	// fraction=0.8 balance=+0.6
	// pattern form: 1 minority per 4 majority (udt minority: false)
}

// A TD ratio learner consumes per-episode statistics and prescribes the
// next target mix; here the environment strongly favours TCP, so the
// learner walks towards balance −1.
func ExampleTDRatioLearner() {
	learner, err := data.NewTDRatioLearner(data.LearnerConfig{
		Estimator: data.ApproxEstimator,
		Rand:      rand.New(rand.NewSource(3)),
	})
	if err != nil {
		panic(err)
	}
	ratio := learner.Initial()
	for episode := 0; episode < 40; episode++ {
		f := ratio.UDTFraction()
		throughput := 10.0 // MB/s on pure UDT
		if f < 1 {
			tcpSide := 100 / (1 - f)
			udtSide := 10 / f
			if f == 0 {
				throughput = 100
			} else if tcpSide < udtSide {
				throughput = tcpSide
			} else {
				throughput = udtSide
			}
		}
		ratio = learner.Update(data.EpisodeStats{
			Duration:  time.Second,
			BytesSent: int64(throughput * (1 << 20)),
		})
	}
	fmt.Printf("converged near balance %.0f\n", learner.Balance())
	// Output: converged near balance -1
}
