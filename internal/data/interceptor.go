package data

import (
	"errors"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// Item is one data message passing through the interceptor. Size drives
// statistics; Ctx carries the caller's message (an outgoing Msg for the
// middleware, a *netsim.Message for experiments) opaquely.
type Item struct {
	// Size is the payload size in bytes.
	Size int
	// Ctx is opaque caller context returned through the send callback.
	Ctx interface{}

	enqueuedAt time.Time
}

// InterceptorConfig parameterises an Interceptor.
type InterceptorConfig struct {
	// PSP assigns per-message protocols; required.
	PSP ProtocolSelectionPolicy
	// PRP prescribes the target ratio per episode; required.
	PRP ProtocolRatioPolicy
	// Clock provides time; required (virtual in experiments).
	Clock clock.Clock
	// Send hands a released item to the network layer with its chosen
	// wire protocol; required. It must not block.
	Send func(proto core.Transport, item *Item)
	// EpisodeLength is the learning-episode duration (default 1 s, as in
	// §IV-B2).
	EpisodeLength time.Duration
	// MaxOutstanding bounds messages released per protocol lane but not
	// yet reported sent (default 2). Keeping socket queues this short is
	// what lets control traffic interleave with bulk data (§V-C).
	MaxOutstanding int
	// OnEpisode, if set, observes each completed episode (for the
	// experiment harness's time series).
	OnEpisode func(stats EpisodeStats, next Ratio)
}

func (c *InterceptorConfig) validate() error {
	switch {
	case c.PSP == nil:
		return errors.New("data: InterceptorConfig.PSP is required")
	case c.PRP == nil:
		return errors.New("data: InterceptorConfig.PRP is required")
	case c.Clock == nil:
		return errors.New("data: InterceptorConfig.Clock is required")
	case c.Send == nil:
		return errors.New("data: InterceptorConfig.Send is required")
	}
	if c.EpisodeLength <= 0 {
		c.EpisodeLength = time.Second
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 2
	}
	return nil
}

// Interceptor is the data-network-interceptor of §IV-A for one
// destination node: it queues outgoing DATA messages and releases them to
// the network layer at the pace the underlying connections sustain,
// stamping each with the protocol chosen by the PSP. Once per episode it
// feeds throughput statistics to the PRP and adopts the returned ratio.
//
// The interceptor is a single-threaded state machine: all methods must be
// called from one goroutine (a kompics component handler or the simulation
// loop). Timers fire through the injected clock.
type Interceptor struct {
	cfg InterceptorConfig

	queue       []*Item
	next        core.Transport // protocol selected for the head-of-line item
	nextValid   bool
	outstanding map[core.Transport]int

	episodeStart time.Time
	bytesSent    int64
	msgsSent     int
	msgsDropped  int
	queueDelay   time.Duration
	episodes     int
	timer        clock.Timer
	running      bool
}

// NewInterceptor builds an interceptor; the configuration is validated.
func NewInterceptor(cfg InterceptorConfig) (*Interceptor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ic := &Interceptor{
		cfg:         cfg,
		outstanding: make(map[core.Transport]int, 2),
	}
	ic.cfg.PSP.SetRatio(cfg.PRP.Initial())
	return ic, nil
}

// Start begins episode accounting. Call once before the first Enqueue.
func (ic *Interceptor) Start() {
	if ic.running {
		return
	}
	ic.running = true
	ic.episodeStart = ic.cfg.Clock.Now()
	ic.scheduleEpisode()
}

// Stop cancels the episode timer. Queued items remain and can still be
// released by OnSent callbacks.
func (ic *Interceptor) Stop() {
	ic.running = false
	if ic.timer != nil {
		ic.timer.Stop()
		ic.timer = nil
	}
}

func (ic *Interceptor) scheduleEpisode() {
	ic.timer = ic.cfg.Clock.AfterFunc(ic.cfg.EpisodeLength, ic.episodeTick)
}

// episodeTick closes the current episode: statistics go to the PRP, whose
// new target ratio is installed in the PSP.
func (ic *Interceptor) episodeTick() {
	if !ic.running {
		return
	}
	now := ic.cfg.Clock.Now()
	stats := EpisodeStats{
		Duration:    now.Sub(ic.episodeStart),
		BytesSent:   ic.bytesSent,
		MsgsSent:    ic.msgsSent,
		MsgsDropped: ic.msgsDropped,
	}
	if ic.msgsSent > 0 {
		stats.AvgQueueDelay = ic.queueDelay / time.Duration(ic.msgsSent)
	}
	next := ic.cfg.PRP.Update(stats)
	ic.cfg.PSP.SetRatio(next)
	if ic.cfg.OnEpisode != nil {
		ic.cfg.OnEpisode(stats, next)
	}
	ic.bytesSent = 0
	ic.msgsSent = 0
	ic.msgsDropped = 0
	ic.queueDelay = 0
	ic.episodeStart = now
	ic.episodes++
	ic.scheduleEpisode()
}

// Enqueue accepts a DATA message for adaptive release.
func (ic *Interceptor) Enqueue(item *Item) {
	item.enqueuedAt = ic.cfg.Clock.Now()
	ic.queue = append(ic.queue, item)
	ic.release()
}

// OnSent reports that the network layer finished writing a previously
// released item on proto, freeing an outstanding slot.
func (ic *Interceptor) OnSent(proto core.Transport) {
	ic.OnSendResult(proto, nil)
}

// OnSendResult is OnSent carrying the send's outcome. A transport
// queue-policy drop (*transport.ErrDropped — shed under overload rather
// than failed by the wire) is charged to the episode's drop counter, so
// the PRP's reward sees overload the episode it happens instead of only
// through the slower queue-delay signal.
func (ic *Interceptor) OnSendResult(proto core.Transport, err error) {
	var de *transport.ErrDropped
	if errors.As(err, &de) {
		ic.msgsDropped++
	}
	if ic.outstanding[proto] > 0 {
		ic.outstanding[proto]--
	}
	ic.release()
}

// release moves queued items to the network while the protocol the PSP
// chose for the head-of-line item has a free outstanding slot. Head-of-
// line blocking on a full lane is deliberate: it preserves the selection
// sequence (and hence the pattern ratio) and throttles the stream to the
// pace of the protocols actually draining, which is what makes episode
// throughput a faithful reward signal.
func (ic *Interceptor) release() {
	for len(ic.queue) > 0 {
		if !ic.nextValid {
			ic.next = ic.cfg.PSP.Select()
			ic.nextValid = true
		}
		if ic.outstanding[ic.next] >= ic.cfg.MaxOutstanding {
			return
		}
		item := ic.queue[0]
		ic.queue[0] = nil
		ic.queue = ic.queue[1:]
		proto := ic.next
		ic.nextValid = false
		ic.outstanding[proto]++
		ic.bytesSent += int64(item.Size)
		ic.msgsSent++
		ic.queueDelay += ic.cfg.Clock.Now().Sub(item.enqueuedAt)
		ic.cfg.Send(proto, item)
	}
}

// QueueLen reports items waiting in the interceptor queue.
func (ic *Interceptor) QueueLen() int { return len(ic.queue) }

// Outstanding reports released-but-unsent items on proto.
func (ic *Interceptor) Outstanding(proto core.Transport) int {
	return ic.outstanding[proto]
}

// Episodes reports how many episodes have completed.
func (ic *Interceptor) Episodes() int { return ic.episodes }

// Ratio returns the currently installed target ratio.
func (ic *Interceptor) Ratio() Ratio { return ic.cfg.PSP.Ratio() }
