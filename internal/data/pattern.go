package data

import "github.com/kompics/kompicsmessaging-go/internal/core"

// Pattern is a deterministic interleaving of TCP and UDT selections that
// realises a target ratio exactly over one full period while keeping every
// prefix close to it (§IV-B3/4).
type Pattern struct {
	seq []core.Transport
	// rest is the leftover-block length c of the chosen construction;
	// exposed for the pattern-choice heuristic and diagnostics.
	rest int
}

// BuildPattern constructs the better of the paper's two general patterns
// for ratio r:
//
//	p-pattern:   (QᵇP)ᵖ Qᶜ   with b = ⌊q/p⌋,     c = q − p·b
//	p+1-pattern: (QᵇP)ᵖ QᵇQᶜ with b = ⌊q/(p+1)⌋, c = q − (p+1)·b
//
// where P is the minority protocol occurring p times per q majority
// messages. The pattern with the smaller rest c wins (ties favour the
// p-pattern). Pure ratios yield a single-element pattern.
func BuildPattern(r Ratio) Pattern {
	p, q, udtMinority := r.MinorityShare()
	minority, majority := core.TCP, core.UDT
	if udtMinority {
		minority, majority = core.UDT, core.TCP
	}
	if p == 0 {
		return Pattern{seq: []core.Transport{majority}}
	}

	bP := q / p
	cP := q - p*bP
	bP1 := q / (p + 1)
	cP1 := q - (p+1)*bP1

	var seq []core.Transport
	var rest int
	if cP <= cP1 {
		// (QᵇP)ᵖ Qᶜ
		seq = make([]core.Transport, 0, p+q)
		for i := 0; i < p; i++ {
			seq = appendRun(seq, majority, bP)
			seq = append(seq, minority)
		}
		seq = appendRun(seq, majority, cP)
		rest = cP
	} else {
		// (QᵇP)ᵖ Qᵇ Qᶜ
		seq = make([]core.Transport, 0, p+q)
		for i := 0; i < p; i++ {
			seq = appendRun(seq, majority, bP1)
			seq = append(seq, minority)
		}
		seq = appendRun(seq, majority, bP1+cP1)
		rest = cP1
	}
	return Pattern{seq: seq, rest: rest}
}

func appendRun(seq []core.Transport, t core.Transport, n int) []core.Transport {
	for i := 0; i < n; i++ {
		seq = append(seq, t)
	}
	return seq
}

// Len returns the pattern period.
func (p Pattern) Len() int { return len(p.seq) }

// Rest returns the leftover-block length c of the construction.
func (p Pattern) Rest() int { return p.rest }

// At returns the protocol at position i of the infinite repetition.
func (p Pattern) At(i int) core.Transport {
	return p.seq[i%len(p.seq)]
}

// Sequence returns a copy of one pattern period.
func (p Pattern) Sequence() []core.Transport {
	out := make([]core.Transport, len(p.seq))
	copy(out, p.seq)
	return out
}
