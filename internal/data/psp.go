package data

import (
	"math/rand"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

// ProtocolSelectionPolicy assigns a concrete wire protocol (TCP or UDT) to
// each individual DATA message, tracking a target ratio prescribed by a
// ProtocolRatioPolicy (§IV-B). Implementations are driven from a single
// goroutine (the interceptor or the simulator).
type ProtocolSelectionPolicy interface {
	// SetRatio updates the target mix; takes effect from the next Select.
	SetRatio(r Ratio)
	// Ratio returns the current target mix.
	Ratio() Ratio
	// Select returns the protocol for the next message.
	Select() core.Transport
}

// RandomSelection is the baseline Bernoulli policy: each message is UDT
// with probability equal to the target's UDT fraction. Unbiased over long
// runs (law of large numbers) but with substantial short-window skew —
// the behaviour quantified in figure 1.
type RandomSelection struct {
	rng  *rand.Rand
	r    Ratio
	prob float64
}

var _ ProtocolSelectionPolicy = (*RandomSelection)(nil)

// NewRandomSelection creates the policy with the given starting ratio.
func NewRandomSelection(r Ratio, rng *rand.Rand) *RandomSelection {
	if rng == nil {
		panic("data: RandomSelection requires a random source")
	}
	s := &RandomSelection{rng: rng}
	s.SetRatio(r)
	return s
}

// SetRatio implements ProtocolSelectionPolicy.
func (s *RandomSelection) SetRatio(r Ratio) {
	s.r = r
	s.prob = r.UDTFraction()
}

// Ratio implements ProtocolSelectionPolicy.
func (s *RandomSelection) Ratio() Ratio { return s.r }

// Select implements ProtocolSelectionPolicy.
func (s *RandomSelection) Select() core.Transport {
	if s.rng.Float64() < s.prob {
		return core.UDT
	}
	return core.TCP
}

// PatternSelection emits the deterministic interleaving of BuildPattern,
// restarting the pattern whenever the ratio changes. Every full period
// matches the target exactly and prefixes deviate by at most one
// majority block (§IV-B3).
type PatternSelection struct {
	r       Ratio
	pattern Pattern
	pos     int
}

var _ ProtocolSelectionPolicy = (*PatternSelection)(nil)

// NewPatternSelection creates the policy with the given starting ratio.
func NewPatternSelection(r Ratio) *PatternSelection {
	s := &PatternSelection{}
	s.SetRatio(r)
	return s
}

// SetRatio implements ProtocolSelectionPolicy.
func (s *PatternSelection) SetRatio(r Ratio) {
	if s.pattern.Len() > 0 && s.r.Equal(r) {
		return // keep position within an unchanged pattern
	}
	s.r = r
	s.pattern = BuildPattern(r)
	s.pos = 0
}

// Ratio implements ProtocolSelectionPolicy.
func (s *PatternSelection) Ratio() Ratio { return s.r }

// Select implements ProtocolSelectionPolicy.
func (s *PatternSelection) Select() core.Transport {
	t := s.pattern.At(s.pos)
	s.pos++
	if s.pos == s.pattern.Len() {
		s.pos = 0
	}
	return t
}
