package data

import (
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// fakeNet stands in for the core network component: it records NotifyReqs
// and immediately acknowledges them, and can inject inbound messages.
type fakeNet struct {
	port *kompics.Port
	comp *kompics.Component

	mu   sync.Mutex
	sent []core.Msg
}

type fakeInject struct{ e kompics.Event }

func (f *fakeNet) Init(ctx *kompics.Context) {
	f.comp = ctx.Component()
	f.port = ctx.Provides(core.NetworkPort)
	ctx.Subscribe(f.port, (*core.Msg)(nil), func(e kompics.Event) {
		f.record(e.(core.Msg))
	})
	ctx.Subscribe(f.port, core.NotifyReq{}, func(e kompics.Event) {
		req := e.(core.NotifyReq)
		f.record(req.Msg)
		ctx.Trigger(core.NotifyResp{ID: req.ID}, f.port)
	})
	ctx.SubscribeSelf(fakeInject{}, func(e kompics.Event) {
		ctx.Trigger(e.(fakeInject).e, f.port)
	})
}

func (f *fakeNet) record(m core.Msg) {
	f.mu.Lock()
	f.sent = append(f.sent, m)
	f.mu.Unlock()
}

func (f *fakeNet) sentMsgs() []core.Msg {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]core.Msg, len(f.sent))
	copy(out, f.sent)
	return out
}

// dataApp is the application side above the DataNetwork.
type dataApp struct {
	port *kompics.Port
	comp *kompics.Component

	mu       sync.Mutex
	received []core.Msg
	notifies []core.NotifyResp
}

type appSend struct{ e kompics.Event }

func (a *dataApp) Init(ctx *kompics.Context) {
	a.comp = ctx.Component()
	a.port = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(a.port, (*core.Msg)(nil), func(e kompics.Event) {
		a.mu.Lock()
		a.received = append(a.received, e.(core.Msg))
		a.mu.Unlock()
	})
	ctx.Subscribe(a.port, core.NotifyResp{}, func(e kompics.Event) {
		a.mu.Lock()
		a.notifies = append(a.notifies, e.(core.NotifyResp))
		a.mu.Unlock()
	})
	ctx.SubscribeSelf(appSend{}, func(e kompics.Event) {
		ctx.Trigger(e.(appSend).e, a.port)
	})
}

type dataHarness struct {
	sys  *kompics.System
	app  *dataApp
	fake *fakeNet
	dn   *Network
}

func newDataHarness(t *testing.T, cfg NetworkConfig) *dataHarness {
	t.Helper()
	sys := kompics.NewSystem()
	t.Cleanup(sys.Shutdown)

	dn, err := NewDataNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dnComp := sys.Create(dn)
	fake := &fakeNet{}
	fakeComp := sys.Create(fake)
	app := &dataApp{}
	appComp := sys.Create(app)

	kompics.MustConnect(fake.port, dn.Required())
	kompics.MustConnect(dn.Provided(), app.port)

	sys.Start(dnComp)
	sys.Start(fakeComp)
	sys.Start(appComp)
	return &dataHarness{sys: sys, app: app, fake: fake, dn: dn}
}

func testMsg(proto core.Transport, destPort int) *core.DataMsg {
	return &core.DataMsg{
		Hdr: core.NewHeader(
			core.MustParseAddress("10.0.0.1:1000"),
			core.NewAddress(core.MustParseAddress("10.0.0.2:1").IP(), destPort),
			proto,
		),
		Payload: make([]byte, 100),
	}
}

func awaitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewDataNetworkValidation(t *testing.T) {
	if _, err := NewDataNetwork(NetworkConfig{}); err == nil {
		t.Fatal("missing NewPRP accepted")
	}
}

func TestDataNetworkSubstitutesProtocols(t *testing.T) {
	h := newDataHarness(t, NetworkConfig{
		NewPSP: func() ProtocolSelectionPolicy { return NewPatternSelection(MustRatio(1, 3)) },
		NewPRP: func() ProtocolRatioPolicy { return StaticRatio{R: MustRatio(1, 3)} },
	})
	for i := 0; i < 9; i++ {
		h.app.comp.SelfTrigger(appSend{e: testMsg(core.DATA, 2000)})
	}
	awaitCond(t, "9 wire messages", func() bool { return len(h.fake.sentMsgs()) == 9 })
	udt, tcp := 0, 0
	for _, m := range h.fake.sentMsgs() {
		switch m.Header().Protocol() {
		case core.UDT:
			udt++
		case core.TCP:
			tcp++
		default:
			t.Fatalf("wire message still carries %v", m.Header().Protocol())
		}
	}
	if udt != 3 || tcp != 6 {
		t.Fatalf("protocol split = %d UDT / %d TCP, want 3/6", udt, tcp)
	}
}

func TestDataNetworkPassesThroughNonData(t *testing.T) {
	h := newDataHarness(t, NetworkConfig{
		NewPRP: func() ProtocolRatioPolicy { return StaticRatio{R: Even} },
	})
	h.app.comp.SelfTrigger(appSend{e: testMsg(core.TCP, 2000)})
	awaitCond(t, "passthrough", func() bool { return len(h.fake.sentMsgs()) == 1 })
	if got := h.fake.sentMsgs()[0].Header().Protocol(); got != core.TCP {
		t.Fatalf("passthrough rewrote protocol to %v", got)
	}
}

func TestDataNetworkNotifyRoundTrip(t *testing.T) {
	h := newDataHarness(t, NetworkConfig{
		NewPRP: func() ProtocolRatioPolicy { return StaticRatio{R: PureTCP} },
	})
	h.app.comp.SelfTrigger(appSend{e: core.NotifyReq{ID: 4242, Msg: testMsg(core.DATA, 2000)}})
	awaitCond(t, "app notify", func() bool {
		h.app.mu.Lock()
		defer h.app.mu.Unlock()
		return len(h.app.notifies) == 1
	})
	h.app.mu.Lock()
	defer h.app.mu.Unlock()
	if h.app.notifies[0].ID != 4242 || !h.app.notifies[0].Sent() {
		t.Fatalf("notify = %+v", h.app.notifies[0])
	}
}

func TestDataNetworkNotifyRoundTripPassthrough(t *testing.T) {
	h := newDataHarness(t, NetworkConfig{
		NewPRP: func() ProtocolRatioPolicy { return StaticRatio{R: PureTCP} },
	})
	h.app.comp.SelfTrigger(appSend{e: core.NotifyReq{ID: 7, Msg: testMsg(core.UDP, 2000)}})
	awaitCond(t, "passthrough notify", func() bool {
		h.app.mu.Lock()
		defer h.app.mu.Unlock()
		return len(h.app.notifies) == 1
	})
	h.app.mu.Lock()
	defer h.app.mu.Unlock()
	if h.app.notifies[0].ID != 7 {
		t.Fatalf("notify ID = %d, want 7 (remap leaked)", h.app.notifies[0].ID)
	}
}

func TestDataNetworkDeliversInbound(t *testing.T) {
	h := newDataHarness(t, NetworkConfig{
		NewPRP: func() ProtocolRatioPolicy { return StaticRatio{R: Even} },
	})
	h.fake.comp.SelfTrigger(fakeInject{e: testMsg(core.TCP, 1000)})
	awaitCond(t, "inbound delivery", func() bool {
		h.app.mu.Lock()
		defer h.app.mu.Unlock()
		return len(h.app.received) == 1
	})
}

func TestDataNetworkRejectsNonReplaceableDataMsg(t *testing.T) {
	h := newDataHarness(t, NetworkConfig{
		NewPRP: func() ProtocolRatioPolicy { return StaticRatio{R: Even} },
	})
	msg := plainMsg{hdr: core.NewHeader(
		core.MustParseAddress("10.0.0.1:1"),
		core.MustParseAddress("10.0.0.2:2"),
		core.DATA,
	)}
	h.app.comp.SelfTrigger(appSend{e: core.NotifyReq{ID: 3, Msg: msg}})
	awaitCond(t, "rejection notify", func() bool {
		h.app.mu.Lock()
		defer h.app.mu.Unlock()
		return len(h.app.notifies) == 1
	})
	h.app.mu.Lock()
	defer h.app.mu.Unlock()
	if h.app.notifies[0].Sent() {
		t.Fatal("non-replaceable DATA message accepted")
	}
}

// plainMsg implements core.Msg but not ProtocolReplaceable.
type plainMsg struct{ hdr core.BasicHeader }

func (m plainMsg) Header() core.Header { return m.hdr }

func TestDataNetworkSeparateStreamsPerDestination(t *testing.T) {
	h := newDataHarness(t, NetworkConfig{
		NewPSP: func() ProtocolSelectionPolicy { return NewPatternSelection(Even) },
		NewPRP: func() ProtocolRatioPolicy { return StaticRatio{R: Even} },
	})
	h.app.comp.SelfTrigger(appSend{e: testMsg(core.DATA, 2000)})
	h.app.comp.SelfTrigger(appSend{e: testMsg(core.DATA, 3000)})
	awaitCond(t, "two wire messages", func() bool { return len(h.fake.sentMsgs()) == 2 })
	h.sys.AwaitQuiescence()
	if got := len(h.dn.streams); got != 2 {
		t.Fatalf("streams = %d, want 2 (one per destination)", got)
	}
}

func TestDataNetworkEpisodesAdvanceWithRealClock(t *testing.T) {
	var mu sync.Mutex
	episodes := 0
	h := newDataHarness(t, NetworkConfig{
		NewPRP:        func() ProtocolRatioPolicy { return StaticRatio{R: PureTCP} },
		EpisodeLength: 20 * time.Millisecond,
		OnEpisode: func(string, EpisodeStats, Ratio) {
			mu.Lock()
			episodes++
			mu.Unlock()
		},
	})
	h.app.comp.SelfTrigger(appSend{e: testMsg(core.DATA, 2000)})
	awaitCond(t, "episodes ticking", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return episodes >= 3
	})
}
