package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRatioReduces(t *testing.T) {
	r := MustRatio(50, 100)
	if r.UDTCount() != 1 || r.Total() != 2 {
		t.Fatalf("50/100 reduced to %d/%d, want 1/2", r.UDTCount(), r.Total())
	}
}

func TestNewRatioErrors(t *testing.T) {
	tests := []struct{ udt, total int }{
		{-1, 10}, {11, 10}, {0, 0}, {1, -5},
	}
	for _, tt := range tests {
		if _, err := NewRatio(tt.udt, tt.total); err == nil {
			t.Errorf("NewRatio(%d,%d) succeeded, want error", tt.udt, tt.total)
		}
	}
}

func TestMustRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRatio(-1,1) did not panic")
		}
	}()
	MustRatio(-1, 1)
}

func TestRatioRepresentations(t *testing.T) {
	tests := []struct {
		name     string
		r        Ratio
		fraction float64
		balance  float64
	}{
		{"pure TCP", PureTCP, 0, -1},
		{"pure UDT", PureUDT, 1, 1},
		{"even", Even, 0.5, 0},
		{"one third", MustRatio(1, 3), 1.0 / 3, -1.0 / 3},
		{"4/5", MustRatio(4, 5), 0.8, 0.6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.UDTFraction(); math.Abs(got-tt.fraction) > 1e-12 {
				t.Fatalf("UDTFraction = %v, want %v", got, tt.fraction)
			}
			if got := tt.r.Balance(); math.Abs(got-tt.balance) > 1e-12 {
				t.Fatalf("Balance = %v, want %v", got, tt.balance)
			}
		})
	}
}

func TestRatioMinorityShare(t *testing.T) {
	tests := []struct {
		name        string
		r           Ratio
		p, q        int
		udtMinority bool
	}{
		{"pure TCP", PureTCP, 0, 1, true},
		{"pure UDT", PureUDT, 0, 1, false},
		{"even", Even, 1, 1, true},
		{"1 UDT in 3", MustRatio(1, 3), 1, 2, true},
		{"2 UDT in 3", MustRatio(2, 3), 1, 2, false},
		{"3 UDT in 100", MustRatio(3, 100), 3, 97, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, q, udt := tt.r.MinorityShare()
			if p != tt.p || q != tt.q || udt != tt.udtMinority {
				t.Fatalf("MinorityShare() = (%d,%d,%v), want (%d,%d,%v)",
					p, q, udt, tt.p, tt.q, tt.udtMinority)
			}
		})
	}
}

func TestRatioFromBalanceGrid(t *testing.T) {
	tests := []struct {
		balance float64
		want    float64 // expected quantised balance on κ=1/5 grid
	}{
		{-1, -1}, {1, 1}, {0, 0},
		{-0.95, -1}, {0.55, 0.6}, {0.29, 0.2},
		{-2, -1}, {2, 1}, // clamped
	}
	for _, tt := range tests {
		r := RatioFromBalance(tt.balance, 5)
		if math.Abs(r.Balance()-tt.want) > 1e-12 {
			t.Errorf("RatioFromBalance(%v) balance = %v, want %v", tt.balance, r.Balance(), tt.want)
		}
	}
}

func TestRatioFromBalanceDefaultGrid(t *testing.T) {
	r := RatioFromBalance(0.1, 0)
	if math.Abs(r.Balance()-0.2) > 1e-12 && math.Abs(r.Balance()-0.0) > 1e-12 {
		t.Fatalf("default-grid quantisation of 0.1 = %v, want 0 or 0.2", r.Balance())
	}
}

func TestRatioIsPure(t *testing.T) {
	if !PureTCP.IsPure() || !PureUDT.IsPure() {
		t.Fatal("pure ratios report IsPure() = false")
	}
	if Even.IsPure() {
		t.Fatal("even mix reports IsPure() = true")
	}
	var zero Ratio
	if !zero.IsPure() {
		t.Fatal("zero ratio should behave as pure TCP")
	}
	if zero.UDTFraction() != 0 {
		t.Fatal("zero ratio fraction nonzero")
	}
}

func TestRatioEqualAndString(t *testing.T) {
	if !MustRatio(2, 4).Equal(Even) {
		t.Fatal("2/4 != 1/2")
	}
	if MustRatio(1, 3).Equal(Even) {
		t.Fatal("1/3 == 1/2")
	}
	if Even.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPropertyRatioGridRoundTrip(t *testing.T) {
	// Quantising any grid point returns exactly that point.
	f := func(step uint8) bool {
		s := int(step) % 11
		want, err := NewRatio(s, 10)
		if err != nil {
			return false
		}
		got := RatioFromBalance(want.Balance(), 5)
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
