package data

import (
	"errors"
	"fmt"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// ProtocolReplaceable is implemented by messages whose wire protocol the
// DATA interceptor may substitute at release time (the paper's DataHeader
// contract). core.DataMsg implements it.
type ProtocolReplaceable interface {
	core.Msg
	// WithWireProtocol returns the message restamped with a concrete
	// transport.
	WithWireProtocol(t core.Transport) core.Msg
}

// sizer lets the interceptor weigh messages for throughput statistics.
type sizer interface{ Size() int }

// NetworkConfig parameterises the DataNetwork component.
type NetworkConfig struct {
	// NewPSP builds the per-destination protocol selection policy
	// (default: pattern selection at the PRP's initial ratio).
	NewPSP func() ProtocolSelectionPolicy
	// NewPRP builds the per-destination protocol ratio policy; required
	// (e.g. StaticRatio or a TDRatioLearner factory).
	NewPRP func() ProtocolRatioPolicy
	// EpisodeLength is the learning episode duration (default 1 s).
	EpisodeLength time.Duration
	// MaxOutstanding bounds released-but-unsent messages per protocol
	// lane (default 2).
	MaxOutstanding int
	// OnEpisode, if set, observes every completed episode of every
	// destination stream (instrumentation).
	OnEpisode func(dest string, stats EpisodeStats, next Ratio)
}

// Network is the DataNetwork component of §IV-A: it provides the Kompics
// network port to applications and requires one from the actual network
// component. Messages with Transport.DATA are queued per destination and
// released with a concrete protocol chosen by the PSP; everything else
// passes straight through (the paper routes non-data traffic around the
// interceptor with channel selectors; passing through one handler hop is
// semantically identical).
type Network struct {
	cfg NetworkConfig

	ctx      *kompics.Context
	comp     *kompics.Component
	provided *kompics.Port
	required *kompics.Port

	streams map[string]*destStream
	pending map[uint64]pendingEntry
	nextID  uint64
}

var _ kompics.Definition = (*Network)(nil)

// destStream is the interceptor state for one destination node.
type destStream struct {
	dest string
	ic   *Interceptor
}

// pendingEntry tracks an in-flight NotifyReq to the lower network layer.
type pendingEntry struct {
	// stream and proto are set for interceptor-released messages, to
	// credit OnSent.
	stream *destStream
	proto  core.Transport
	// appID/wantNotify route the response back to the application.
	appID      uint64
	wantNotify bool
}

// itemCtx is the interceptor queue context for middleware messages.
type itemCtx struct {
	msg        ProtocolReplaceable
	appID      uint64
	wantNotify bool
}

// NewDataNetwork builds the component definition.
func NewDataNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.NewPRP == nil {
		return nil, errors.New("data: NetworkConfig.NewPRP is required")
	}
	if cfg.NewPSP == nil {
		cfg.NewPSP = func() ProtocolSelectionPolicy {
			return NewPatternSelection(Even)
		}
	}
	if cfg.EpisodeLength <= 0 {
		cfg.EpisodeLength = time.Second
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 2
	}
	return &Network{
		cfg:     cfg,
		streams: make(map[string]*destStream),
		pending: make(map[uint64]pendingEntry),
	}, nil
}

// Provided returns the port applications connect their required network
// port to.
func (n *Network) Provided() *kompics.Port { return n.provided }

// Required returns the port to connect to the core network component's
// provided port.
func (n *Network) Required() *kompics.Port { return n.required }

// timerFire carries an interceptor timer callback into component context.
type timerFire struct{ fn func() }

// Init implements kompics.Definition.
func (n *Network) Init(ctx *kompics.Context) {
	n.ctx = ctx
	n.comp = ctx.Component()
	n.provided = ctx.Provides(core.NetworkPort)
	n.required = ctx.Requires(core.NetworkPort)

	ctx.Subscribe(n.provided, (*core.Msg)(nil), func(e kompics.Event) {
		n.outgoing(e.(core.Msg), 0, false)
	})
	ctx.Subscribe(n.provided, core.NotifyReq{}, func(e kompics.Event) {
		req := e.(core.NotifyReq)
		n.outgoing(req.Msg, req.ID, true)
	})
	ctx.Subscribe(n.required, (*core.Msg)(nil), func(e kompics.Event) {
		// Inbound traffic passes straight up.
		ctx.Trigger(e.(core.Msg), n.provided)
	})
	ctx.Subscribe(n.required, core.NotifyResp{}, func(e kompics.Event) {
		n.lowerNotify(e.(core.NotifyResp))
	})
	ctx.SubscribeSelf(timerFire{}, func(e kompics.Event) {
		e.(timerFire).fn()
	})
	ctx.OnStop(func() { n.stopStreams() })
	ctx.OnKill(func() { n.stopStreams() })
}

func (n *Network) stopStreams() {
	for _, st := range n.streams {
		st.ic.Stop()
	}
}

// outgoing routes one application message.
func (n *Network) outgoing(msg core.Msg, appID uint64, wantNotify bool) {
	if msg.Header().Protocol() != core.DATA {
		// Pass through, remapping notification IDs so they cannot
		// collide with our internal correlation space.
		if !wantNotify {
			n.ctx.Trigger(msg, n.required)
			return
		}
		id := n.allocPending(pendingEntry{appID: appID, wantNotify: true})
		n.ctx.Trigger(core.NotifyReq{ID: id, Msg: msg}, n.required)
		return
	}

	pr, ok := msg.(ProtocolReplaceable)
	if !ok {
		err := fmt.Errorf("data: %T uses Transport.DATA but does not implement ProtocolReplaceable", msg)
		if wantNotify {
			n.ctx.Trigger(core.NotifyResp{ID: appID, Err: err}, n.provided)
		}
		return
	}
	st := n.stream(core.AddressKey(msg.Header().Destination()))
	size := 0
	if s, ok := msg.(sizer); ok {
		size = s.Size()
	}
	st.ic.Enqueue(&Item{
		Size: size,
		Ctx:  itemCtx{msg: pr, appID: appID, wantNotify: wantNotify},
	})
}

// stream returns (creating on first use) the interceptor for dest.
func (n *Network) stream(dest string) *destStream {
	if st, ok := n.streams[dest]; ok {
		return st
	}
	st := &destStream{dest: dest}
	ic, err := NewInterceptor(InterceptorConfig{
		PSP:            n.cfg.NewPSP(),
		PRP:            n.cfg.NewPRP(),
		Clock:          componentClock{comp: n.comp, inner: n.ctx.System().Clock()},
		EpisodeLength:  n.cfg.EpisodeLength,
		MaxOutstanding: n.cfg.MaxOutstanding,
		Send: func(proto core.Transport, item *Item) {
			n.releaseToWire(st, proto, item)
		},
		OnEpisode: func(stats EpisodeStats, next Ratio) {
			if n.cfg.OnEpisode != nil {
				n.cfg.OnEpisode(dest, stats, next)
			}
		},
	})
	if err != nil {
		panic(err) // config was validated in NewDataNetwork; unreachable
	}
	st.ic = ic
	ic.Start()
	n.streams[dest] = st
	return st
}

// releaseToWire forwards an interceptor-released message to the network
// component with a tracking NotifyReq, so the interceptor learns when the
// socket write completed.
func (n *Network) releaseToWire(st *destStream, proto core.Transport, item *Item) {
	ic := item.Ctx.(itemCtx)
	wireMsg := ic.msg.WithWireProtocol(proto)
	id := n.allocPending(pendingEntry{
		stream:     st,
		proto:      proto,
		appID:      ic.appID,
		wantNotify: ic.wantNotify,
	})
	n.ctx.Trigger(core.NotifyReq{ID: id, Msg: wireMsg}, n.required)
}

func (n *Network) allocPending(e pendingEntry) uint64 {
	n.nextID++
	n.pending[n.nextID] = e
	return n.nextID
}

// lowerNotify handles a NotifyResp from the network component.
func (n *Network) lowerNotify(resp core.NotifyResp) {
	entry, ok := n.pending[resp.ID]
	if !ok {
		return // not ours (should not happen; IDs are remapped)
	}
	delete(n.pending, resp.ID)
	if entry.stream != nil {
		// The outcome rides along so the interceptor can charge transport
		// queue-policy drops to the episode's overload counter.
		entry.stream.ic.OnSendResult(entry.proto, resp.Err)
	}
	if entry.wantNotify {
		n.ctx.Trigger(core.NotifyResp{ID: entry.appID, Err: resp.Err}, n.provided)
	}
}

// componentClock adapts the system clock so interceptor timer callbacks
// run inside the owning component (exclusive-state guarantee).
type componentClock struct {
	comp  *kompics.Component
	inner clock.Clock
}

var _ clock.Clock = componentClock{}

// Now implements clock.Clock.
func (c componentClock) Now() time.Time { return c.inner.Now() }

// AfterFunc implements clock.Clock: the callback is re-routed through the
// component's self-trigger queue.
func (c componentClock) AfterFunc(d time.Duration, f func()) clock.Timer {
	return c.inner.AfterFunc(d, func() {
		c.comp.SelfTrigger(timerFire{fn: f})
	})
}
