package data

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/transport"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

func TestQoSDropRate(t *testing.T) {
	if r := (EpisodeStats{}).DropRate(); r != 0 {
		t.Fatalf("empty episode DropRate = %v, want 0", r)
	}
	if r := (EpisodeStats{MsgsDropped: 3}).DropRate(); r != 0 {
		t.Fatalf("nothing-sent episode DropRate = %v, want 0", r)
	}
	s := EpisodeStats{MsgsSent: 8, MsgsDropped: 2}
	if r := s.DropRate(); r != 0.25 {
		t.Fatalf("DropRate = %v, want 0.25", r)
	}
}

// TestQoSDropWeightInReward checks the overload term of the Sarsa(λ)
// reward: with DropWeight set, an episode's drop rate is subtracted at
// exactly that weight; with it zero, drops do not move the reward.
func TestQoSDropWeightInReward(t *testing.T) {
	mk := func(w float64) *TDRatioLearner {
		l, err := NewTDRatioLearner(LearnerConfig{
			Rand:       rand.New(rand.NewSource(1)),
			DropWeight: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	clean := EpisodeStats{Duration: time.Second, BytesSent: 1 << 20, MsgsSent: 100}
	shedding := clean
	shedding.MsgsDropped = 25 // drop rate 0.25

	l := mk(4)
	gap := l.reward(clean) - l.reward(shedding)
	if want := 4 * shedding.DropRate(); math.Abs(gap-want) > 1e-9 {
		t.Fatalf("drop penalty = %v, want DropWeight*DropRate = %v", gap, want)
	}

	if l0 := mk(0); l0.reward(clean) != l0.reward(shedding) {
		t.Fatal("DropWeight=0 but drops moved the reward")
	}

	// The penalty feeds Update without blowing up the ratio walk.
	l2 := mk(4)
	r := l2.Update(shedding)
	if f := r.UDTFraction(); f < 0 || f > 1 {
		t.Fatalf("ratio left [0,1] after overloaded episode: %v", r)
	}
}

// TestQoSInterceptorCountsDropsInEpisode feeds transport queue-policy
// outcomes back through OnSendResult: ErrDropped (even wrapped) charges
// the episode's MsgsDropped, other errors and successes do not, and the
// counter resets with the episode.
func TestQoSInterceptorCountsDropsInEpisode(t *testing.T) {
	var episodes []EpisodeStats
	ic, clk, sent := newTestInterceptor(t, InterceptorConfig{
		PSP:            NewPatternSelection(PureTCP),
		PRP:            StaticRatio{R: PureTCP},
		EpisodeLength:  time.Second,
		MaxOutstanding: 100,
		OnEpisode:      func(s EpisodeStats, _ Ratio) { episodes = append(episodes, s) },
	})
	ic.Start()
	for i := 0; i < 5; i++ {
		ic.Enqueue(&Item{Size: 100})
	}
	if len(*sent) != 5 {
		t.Fatalf("released %d of 5", len(*sent))
	}

	dropErr := &transport.ErrDropped{Reason: transport.DropCoalesced, Class: wire.ClassTelemetry}
	outcomes := []error{
		dropErr,
		fmt.Errorf("notify: %w", dropErr), // wrapped drops still count
		nil,
		nil,
		errors.New("connection reset"), // a wire failure is not a shed
	}
	for _, err := range outcomes {
		ic.OnSendResult((*sent)[0].proto, err)
	}

	clk.Advance(time.Second)
	if len(episodes) != 1 {
		t.Fatalf("episodes = %d, want 1", len(episodes))
	}
	st := episodes[0]
	if st.MsgsDropped != 2 {
		t.Fatalf("MsgsDropped = %d, want 2", st.MsgsDropped)
	}
	if got, want := st.DropRate(), 2.0/float64(st.MsgsSent); got != want {
		t.Fatalf("DropRate = %v, want %v", got, want)
	}

	// The next episode starts clean.
	clk.Advance(time.Second)
	if len(episodes) != 2 || episodes[1].MsgsDropped != 0 {
		t.Fatalf("second episode drop counter not reset: %+v", episodes)
	}
}
