package data

import (
	"fmt"
	"math"
)

// Ratio is the target TCP/UDT mix, stored exactly as a reduced rational
// u/d: u UDT messages out of every d. The paper uses three equivalent
// representations, all available here:
//
//   - UDTFraction ∈ [0,1]: the probability of picking UDT;
//   - Balance ∈ [−1,1]: −1 ≡ 100% TCP, 0 ≡ 50-50, +1 ≡ 100% UDT
//     (the form used for analysis and in all figures);
//   - the pattern form "p Ps for every q Qs" via MinorityShare.
type Ratio struct {
	udt, den int
}

// Canonical ratios.
var (
	// PureTCP sends everything over TCP (balance −1).
	PureTCP = Ratio{udt: 0, den: 1}
	// PureUDT sends everything over UDT (balance +1).
	PureUDT = Ratio{udt: 1, den: 1}
	// Even is the 50-50 mix (balance 0).
	Even = Ratio{udt: 1, den: 2}
)

// NewRatio constructs the ratio "udt UDT messages out of every total".
func NewRatio(udt, total int) (Ratio, error) {
	if total <= 0 || udt < 0 || udt > total {
		return Ratio{}, fmt.Errorf("data: invalid ratio %d/%d", udt, total)
	}
	g := gcd(udt, total)
	return Ratio{udt: udt / g, den: total / g}, nil
}

// MustRatio is NewRatio that panics on error, for literals in wiring code.
func MustRatio(udt, total int) Ratio {
	r, err := NewRatio(udt, total)
	if err != nil {
		panic(err)
	}
	return r
}

// RatioFromBalance quantises a balance value in [−1,1] onto the grid with
// step κ = grid⁻¹ (the paper uses κ = 1/5, i.e. grid = 5, giving 11
// states). Values outside [−1,1] are clamped.
func RatioFromBalance(balance float64, grid int) Ratio {
	if grid <= 0 {
		grid = 5
	}
	if balance < -1 {
		balance = -1
	}
	if balance > 1 {
		balance = 1
	}
	// balance b → UDT fraction (b+1)/2, on a grid of 2·grid+1 states.
	steps := int(math.Round((balance + 1) / 2 * float64(2*grid)))
	r, err := NewRatio(steps, 2*grid)
	if err != nil {
		panic(err) // unreachable: steps ∈ [0, 2·grid]
	}
	return r
}

// UDTCount returns the UDT message count of the reduced rational.
func (r Ratio) UDTCount() int { return r.udt }

// Total returns the denominator of the reduced rational.
func (r Ratio) Total() int { return r.den }

// UDTFraction returns the ratio as the probability of selecting UDT.
func (r Ratio) UDTFraction() float64 {
	if r.den == 0 { // zero value behaves as pure TCP
		return 0
	}
	return float64(r.udt) / float64(r.den)
}

// Balance returns the ratio in the figures' [−1,1] form.
func (r Ratio) Balance() float64 { return 2*r.UDTFraction() - 1 }

// MinorityShare expresses the ratio in the paper's pattern form: p
// messages of the minority protocol for every q of the majority, with
// udtMinority reporting which protocol is the minority P. For the exact
// 50-50 mix, UDT is reported as minority with p = q = 1.
func (r Ratio) MinorityShare() (p, q int, udtMinority bool) {
	u, d := r.udt, r.den
	if d == 0 {
		return 0, 1, true
	}
	tcp := d - u
	if u <= tcp {
		return u, tcp, true
	}
	return tcp, u, false
}

// IsPure reports whether the ratio selects a single protocol.
func (r Ratio) IsPure() bool {
	return r.den == 0 || r.udt == 0 || r.udt == r.den
}

// Equal reports whether two ratios denote the same mix.
func (r Ratio) Equal(o Ratio) bool {
	return r.UDTFraction() == o.UDTFraction()
}

// String implements fmt.Stringer, in the balance form used by the paper's
// figures.
func (r Ratio) String() string {
	return fmt.Sprintf("%.2f[%d/%d]", r.Balance(), r.udt, r.den)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
