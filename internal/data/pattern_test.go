package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

func countUDT(seq []core.Transport) int {
	n := 0
	for _, t := range seq {
		if t == core.UDT {
			n++
		}
	}
	return n
}

func TestBuildPatternExamplesFromPaper(t *testing.T) {
	tests := []struct {
		name   string
		r      Ratio
		period int
		udt    int
	}{
		// §IV-B3: r=1/2 → (up)*; r=1/3 → period-3 patterns with one u.
		{"fifty-fifty", Even, 2, 1},
		{"one third", MustRatio(1, 3), 3, 1},
		{"two thirds", MustRatio(2, 3), 3, 2},
		{"3 per 100", MustRatio(3, 100), 100, 3},
		{"4 of 5", MustRatio(4, 5), 5, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := BuildPattern(tt.r)
			if p.Len() != tt.period {
				t.Fatalf("period = %d, want %d", p.Len(), tt.period)
			}
			if got := countUDT(p.Sequence()); got != tt.udt {
				t.Fatalf("UDT count = %d, want %d", got, tt.udt)
			}
		})
	}
}

func TestBuildPatternPure(t *testing.T) {
	for _, r := range []Ratio{PureTCP, PureUDT} {
		p := BuildPattern(r)
		if p.Len() != 1 {
			t.Fatalf("pure pattern period = %d, want 1", p.Len())
		}
		want := core.TCP
		if r.Equal(PureUDT) {
			want = core.UDT
		}
		if p.At(0) != want {
			t.Fatalf("pure pattern emits %v, want %v", p.At(0), want)
		}
	}
}

func TestPatternAtWrapsAround(t *testing.T) {
	p := BuildPattern(MustRatio(1, 3))
	for i := 0; i < 3; i++ {
		if p.At(i) != p.At(i+3) || p.At(i) != p.At(i+300) {
			t.Fatal("At() does not repeat with the period")
		}
	}
}

// maxPrefixSkew returns the worst |observed−target| UDT-fraction deviation
// over all prefixes of one pattern period.
func maxPrefixSkew(p Pattern, target float64) float64 {
	worst := 0.0
	udt := 0
	for i := 0; i < p.Len(); i++ {
		if p.At(i) == core.UDT {
			udt++
		}
		dev := math.Abs(float64(udt)/float64(i+1) - target)
		if dev > worst {
			worst = dev
		}
	}
	return worst
}

func TestPropertyPatternExactOverFullPeriod(t *testing.T) {
	// §IV-B3 requirement (b): a complete run of a pattern has no
	// deviation from r.
	f := func(u, d uint8) bool {
		total := int(d)%200 + 1
		udt := int(u) % (total + 1)
		r := MustRatio(udt, total)
		p := BuildPattern(r)
		seq := p.Sequence()
		return math.Abs(float64(countUDT(seq))/float64(len(seq))-r.UDTFraction()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPatternPrefixSkewBounded(t *testing.T) {
	// §IV-B3 requirement (a): prefix deviation stays small — within one
	// majority block of the target at any cut point.
	f := func(u, d uint8) bool {
		total := int(d)%100 + 2
		udt := int(u) % (total + 1)
		r := MustRatio(udt, total)
		p, q, _ := r.MinorityShare()
		pat := BuildPattern(r)
		if p == 0 {
			return maxPrefixSkew(pat, r.UDTFraction()) == 0
		}
		// After the first majority block of length b (plus rest), the
		// running ratio must be within one block's worth of the target.
		b := q/p + 1
		bound := float64(b+1) / float64(b+2)
		return maxPrefixSkew(pat, r.UDTFraction()) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternBeatsRandomOnWindowedSkew(t *testing.T) {
	// The figure-1 headline: over short on-the-wire windows (16 messages)
	// the pattern selector's worst-case deviation is far below the
	// probabilistic selector's, for moderate ratios.
	const window, n = 16, 160000
	for _, target := range []Ratio{Even, MustRatio(1, 3), MustRatio(4, 5)} {
		pat := NewPatternSelection(target)
		rnd := NewRandomSelection(target, rand.New(rand.NewSource(42)))
		worst := func(sel ProtocolSelectionPolicy) float64 {
			buf := make([]core.Transport, 0, n)
			for i := 0; i < n; i++ {
				buf = append(buf, sel.Select())
			}
			w := 0.0
			udt := 0
			for i, tr := range buf {
				if tr == core.UDT {
					udt++
				}
				if i >= window {
					if buf[i-window] == core.UDT {
						udt--
					}
				}
				if i >= window-1 {
					dev := math.Abs(float64(udt)/window - target.UDTFraction())
					if dev > w {
						w = dev
					}
				}
			}
			return w
		}
		pw, rw := worst(pat), worst(rnd)
		if pw >= rw {
			t.Fatalf("target %v: pattern worst skew %.3f not below random %.3f",
				target, pw, rw)
		}
	}
}
