package data_test

// Integration across contribution packages: vnet messages (virtual-node
// addressing) carried by the DATA meta-protocol through a DataNetwork —
// the combination the paper's conclusion advertises ("virtual node
// architectures ... built on top with minimal overhead" plus adaptive
// transport selection).

import (
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/vnet"
)

// wireSink stands in for the core network: it records what would hit the
// wire and acks every notify.
type wireSink struct {
	port *kompics.Port

	mu   sync.Mutex
	sent []core.Msg
}

func (f *wireSink) Init(ctx *kompics.Context) {
	f.port = ctx.Provides(core.NetworkPort)
	ctx.Subscribe(f.port, (*core.Msg)(nil), func(e kompics.Event) {
		f.record(e.(core.Msg))
	})
	ctx.Subscribe(f.port, core.NotifyReq{}, func(e kompics.Event) {
		req := e.(core.NotifyReq)
		f.record(req.Msg)
		ctx.Trigger(core.NotifyResp{ID: req.ID}, f.port)
	})
}

func (f *wireSink) record(m core.Msg) {
	f.mu.Lock()
	f.sent = append(f.sent, m)
	f.mu.Unlock()
}

func (f *wireSink) snapshot() []core.Msg {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]core.Msg, len(f.sent))
	copy(out, f.sent)
	return out
}

// vnodeSender publishes vnet messages on its required network port.
type vnodeSender struct {
	port *kompics.Port
	comp *kompics.Component
}

type push struct{ e kompics.Event }

func (s *vnodeSender) Init(ctx *kompics.Context) {
	s.comp = ctx.Component()
	s.port = ctx.Requires(core.NetworkPort)
	ctx.SubscribeSelf(push{}, func(e kompics.Event) {
		ctx.Trigger(e.(push).e, s.port)
	})
}

func TestVNetMessagesThroughDataNetwork(t *testing.T) {
	sys := kompics.NewSystem()
	defer sys.Shutdown()

	dn, err := data.NewDataNetwork(data.NetworkConfig{
		NewPSP: func() data.ProtocolSelectionPolicy {
			return data.NewPatternSelection(data.MustRatio(1, 2))
		},
		NewPRP: func() data.ProtocolRatioPolicy {
			return data.StaticRatio{R: data.MustRatio(1, 2)}
		},
		MaxOutstanding: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	dnComp := sys.Create(dn)
	sink := &wireSink{}
	sinkComp := sys.Create(sink)
	sender := &vnodeSender{}
	senderComp := sys.Create(sender)
	kompics.MustConnect(sink.port, dn.Required())
	kompics.MustConnect(dn.Provided(), sender.port)
	sys.Start(dnComp)
	sys.Start(sinkComp)
	sys.Start(senderComp)

	src := vnet.NewAddress(core.MustParseAddress("10.0.0.1:100"), []byte("a"))
	dst := vnet.NewAddress(core.MustParseAddress("10.0.0.2:100"), []byte("b"))
	const n = 10
	for i := 0; i < n; i++ {
		sender.comp.SelfTrigger(push{e: &vnet.Msg{
			Src: src, Dst: dst, Proto: core.DATA, Payload: []byte{byte(i)},
		}})
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(sink.snapshot()) < n {
		time.Sleep(time.Millisecond)
	}
	sent := sink.snapshot()
	if len(sent) != n {
		t.Fatalf("wire saw %d messages, want %d", len(sent), n)
	}
	tcp, udt := 0, 0
	for _, m := range sent {
		vm, ok := m.(*vnet.Msg)
		if !ok {
			t.Fatalf("wire message is %T, want *vnet.Msg", m)
		}
		switch vm.Proto {
		case core.TCP:
			tcp++
		case core.UDT:
			udt++
		default:
			t.Fatalf("wire message still carries %v", vm.Proto)
		}
		// Virtual-node identity must survive protocol substitution.
		ident, ok := vm.Header().Destination().(vnet.Identified)
		if !ok || string(ident.VNodeID()) != "b" {
			t.Fatal("vnode identity lost through the interceptor")
		}
	}
	if tcp != n/2 || udt != n/2 {
		t.Fatalf("protocol split %d/%d, want %d/%d", tcp, udt, n/2, n/2)
	}
}
