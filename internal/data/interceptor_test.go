package data

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/core"
)

type sentRecord struct {
	proto core.Transport
	item  *Item
}

func newTestInterceptor(t *testing.T, cfg InterceptorConfig) (*Interceptor, *clock.Virtual, *[]sentRecord) {
	t.Helper()
	clk := clock.NewVirtual()
	var sent []sentRecord
	if cfg.PSP == nil {
		cfg.PSP = NewPatternSelection(Even)
	}
	if cfg.PRP == nil {
		cfg.PRP = StaticRatio{R: Even}
	}
	cfg.Clock = clk
	if cfg.Send == nil {
		cfg.Send = func(p core.Transport, it *Item) {
			sent = append(sent, sentRecord{proto: p, item: it})
		}
	}
	ic, err := NewInterceptor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ic, clk, &sent
}

func TestInterceptorConfigValidation(t *testing.T) {
	clk := clock.NewVirtual()
	send := func(core.Transport, *Item) {}
	base := InterceptorConfig{
		PSP:   NewPatternSelection(Even),
		PRP:   StaticRatio{R: Even},
		Clock: clk,
		Send:  send,
	}
	mutations := []struct {
		name   string
		mutate func(*InterceptorConfig)
	}{
		{"nil PSP", func(c *InterceptorConfig) { c.PSP = nil }},
		{"nil PRP", func(c *InterceptorConfig) { c.PRP = nil }},
		{"nil Clock", func(c *InterceptorConfig) { c.Clock = nil }},
		{"nil Send", func(c *InterceptorConfig) { c.Send = nil }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewInterceptor(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	if _, err := NewInterceptor(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestInterceptorReleasesUpToMaxOutstanding(t *testing.T) {
	ic, _, sent := newTestInterceptor(t, InterceptorConfig{
		PSP:            NewPatternSelection(PureTCP),
		PRP:            StaticRatio{R: PureTCP},
		MaxOutstanding: 2,
	})
	ic.Start()
	for i := 0; i < 5; i++ {
		ic.Enqueue(&Item{Size: 1000})
	}
	if len(*sent) != 2 {
		t.Fatalf("released %d items, want 2 (MaxOutstanding)", len(*sent))
	}
	if ic.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d, want 3", ic.QueueLen())
	}
	if ic.Outstanding(core.TCP) != 2 {
		t.Fatalf("Outstanding(TCP) = %d, want 2", ic.Outstanding(core.TCP))
	}
	ic.OnSent(core.TCP)
	if len(*sent) != 3 {
		t.Fatalf("after OnSent released %d, want 3", len(*sent))
	}
}

func TestInterceptorPreservesPatternOrder(t *testing.T) {
	// With a 1/3 UDT ratio the release sequence must repeat a period of
	// exactly one UDT per three messages, even under backpressure.
	ic, _, sent := newTestInterceptor(t, InterceptorConfig{
		PSP:            NewPatternSelection(MustRatio(1, 3)),
		PRP:            StaticRatio{R: MustRatio(1, 3)},
		MaxOutstanding: 1,
	})
	ic.Start()
	for i := 0; i < 9; i++ {
		ic.Enqueue(&Item{Size: 100})
	}
	// Drain by acknowledging each released message exactly once, FIFO.
	for acked := 0; len(*sent) < 9; acked++ {
		if acked >= len(*sent) {
			t.Fatalf("stalled: %d released, %d acked", len(*sent), acked)
		}
		ic.OnSent((*sent)[acked].proto)
	}
	udt := 0
	for _, r := range *sent {
		if r.proto == core.UDT {
			udt++
		}
	}
	if udt != 3 {
		t.Fatalf("9 released messages contained %d UDT, want 3", udt)
	}
}

func TestInterceptorHeadOfLineBlocksOnFullLane(t *testing.T) {
	// Pure-UDT pattern with a saturated UDT lane must not leak messages
	// onto TCP.
	ic, _, sent := newTestInterceptor(t, InterceptorConfig{
		PSP:            NewPatternSelection(PureUDT),
		PRP:            StaticRatio{R: PureUDT},
		MaxOutstanding: 1,
	})
	ic.Start()
	ic.Enqueue(&Item{Size: 1})
	ic.Enqueue(&Item{Size: 1})
	if len(*sent) != 1 {
		t.Fatalf("released %d, want 1", len(*sent))
	}
	if (*sent)[0].proto != core.UDT {
		t.Fatalf("released on %v, want UDT", (*sent)[0].proto)
	}
	if ic.QueueLen() != 1 {
		t.Fatal("second message should wait for the UDT lane")
	}
}

func TestInterceptorEpisodeStatsAndCallback(t *testing.T) {
	var episodes []EpisodeStats
	var ratios []Ratio
	ic, clk, _ := newTestInterceptor(t, InterceptorConfig{
		PSP:           NewPatternSelection(Even),
		PRP:           StaticRatio{R: Even},
		EpisodeLength: time.Second,
		OnEpisode: func(s EpisodeStats, next Ratio) {
			episodes = append(episodes, s)
			ratios = append(ratios, next)
		},
		MaxOutstanding: 100,
	})
	ic.Start()
	for i := 0; i < 10; i++ {
		ic.Enqueue(&Item{Size: 1000})
	}
	clk.Advance(time.Second)
	if len(episodes) != 1 {
		t.Fatalf("episodes = %d, want 1", len(episodes))
	}
	st := episodes[0]
	if st.BytesSent != 10000 || st.MsgsSent != 10 {
		t.Fatalf("episode stats = %+v", st)
	}
	if st.Duration != time.Second {
		t.Fatalf("episode duration = %v", st.Duration)
	}
	if !ratios[0].Equal(Even) {
		t.Fatal("static PRP changed ratio")
	}
	if ic.Episodes() != 1 {
		t.Fatalf("Episodes() = %d", ic.Episodes())
	}

	// Second episode starts fresh.
	clk.Advance(time.Second)
	if len(episodes) != 2 || episodes[1].BytesSent != 0 {
		t.Fatalf("second episode not reset: %+v", episodes)
	}
}

func TestInterceptorQueueDelayAveraged(t *testing.T) {
	var got EpisodeStats
	ic, clk, sent := newTestInterceptor(t, InterceptorConfig{
		PSP:            NewPatternSelection(PureTCP),
		PRP:            StaticRatio{R: PureTCP},
		EpisodeLength:  10 * time.Second,
		MaxOutstanding: 1,
		OnEpisode:      func(s EpisodeStats, _ Ratio) { got = s },
	})
	ic.Start()
	ic.Enqueue(&Item{Size: 1}) // released immediately, zero delay
	ic.Enqueue(&Item{Size: 1}) // waits 2 s
	clk.Advance(2 * time.Second)
	ic.OnSent(core.TCP)
	if len(*sent) != 2 {
		t.Fatalf("released %d", len(*sent))
	}
	clk.Advance(8 * time.Second)
	if got.AvgQueueDelay != time.Second {
		t.Fatalf("AvgQueueDelay = %v, want 1s (mean of 0s and 2s)", got.AvgQueueDelay)
	}
}

func TestInterceptorStartStopIdempotent(t *testing.T) {
	ic, clk, _ := newTestInterceptor(t, InterceptorConfig{})
	ic.Start()
	ic.Start()
	ic.Stop()
	ic.Stop()
	clk.Advance(5 * time.Second)
	if ic.Episodes() != 0 {
		t.Fatal("episodes ticked after Stop")
	}
}

func TestInterceptorStopKeepsReleasing(t *testing.T) {
	// Stop halts learning, not the data path.
	ic, _, sent := newTestInterceptor(t, InterceptorConfig{
		PSP: NewPatternSelection(PureTCP), PRP: StaticRatio{R: PureTCP},
		MaxOutstanding: 1,
	})
	ic.Start()
	ic.Enqueue(&Item{Size: 1})
	ic.Enqueue(&Item{Size: 1})
	ic.Stop()
	ic.OnSent(core.TCP)
	if len(*sent) != 2 {
		t.Fatalf("release stopped with learning: %d", len(*sent))
	}
}

func TestInterceptorAdoptsPRPInitialRatio(t *testing.T) {
	ic, _, _ := newTestInterceptor(t, InterceptorConfig{
		PSP: NewPatternSelection(Even),
		PRP: StaticRatio{R: PureUDT},
	})
	if !ic.Ratio().Equal(PureUDT) {
		t.Fatalf("interceptor ratio = %v, want PRP initial PureUDT", ic.Ratio())
	}
}

func TestInterceptorOnSentUnknownProtoHarmless(t *testing.T) {
	ic, _, _ := newTestInterceptor(t, InterceptorConfig{})
	ic.OnSent(core.UDT) // no outstanding: must not underflow
	if ic.Outstanding(core.UDT) != 0 {
		t.Fatal("outstanding count underflowed")
	}
}

func TestPropertyInterceptorPreservesRatioUnderRandomAcks(t *testing.T) {
	// For any target ratio and any interleaving of acknowledgements, the
	// interceptor's released sequence realises the PSP pattern exactly
	// over full periods — head-of-line blocking never reorders or skews
	// the selection sequence.
	f := func(udt, total uint8, ackOrder []bool, maxOut uint8) bool {
		tot := int(total)%12 + 2
		u := int(udt) % (tot + 1)
		target := MustRatio(u, tot)

		clk := clock.NewVirtual()
		var released []core.Transport
		ic, err := NewInterceptor(InterceptorConfig{
			PSP:            NewPatternSelection(target),
			PRP:            StaticRatio{R: target},
			Clock:          clk,
			MaxOutstanding: int(maxOut)%4 + 1,
			Send: func(p core.Transport, _ *Item) {
				released = append(released, p)
			},
		})
		if err != nil {
			return false
		}
		ic.Start()

		// Three full pattern periods' worth of messages.
		period := BuildPattern(target).Len()
		n := 3 * period
		for i := 0; i < n; i++ {
			ic.Enqueue(&Item{Size: 100})
		}
		// Drain with arbitrary ack ordering between the two lanes.
		for i := 0; len(released) < n && i < 10*n; i++ {
			proto := core.TCP
			if len(ackOrder) > 0 && ackOrder[i%len(ackOrder)] {
				proto = core.UDT
			}
			if ic.Outstanding(proto) == 0 {
				// Ack whichever lane actually has traffic.
				if ic.Outstanding(core.TCP) > 0 {
					proto = core.TCP
				} else {
					proto = core.UDT
				}
			}
			ic.OnSent(proto)
		}
		if len(released) != n {
			return false
		}
		udtCount := 0
		for _, p := range released {
			if p == core.UDT {
				udtCount++
			}
		}
		want := int(float64(n)*target.UDTFraction() + 0.5)
		return udtCount == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
