package data

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/rl"
)

// EpisodeStats summarises one learning episode (default 1 s) of a data
// stream, and is the reward signal for adaptive ratio policies.
type EpisodeStats struct {
	// Duration is the episode length.
	Duration time.Duration
	// BytesSent is the payload volume handed to the wire during the
	// episode.
	BytesSent int64
	// MsgsSent counts messages released during the episode.
	MsgsSent int
	// MsgsDropped counts released messages the transport's queue policy
	// shed under overload (*transport.ErrDropped outcomes) during the
	// episode — queue-full rejections, latest-value coalesces, and
	// deadline expiries alike.
	MsgsDropped int
	// AvgQueueDelay is the mean time messages spent in the interceptor
	// queue before release.
	AvgQueueDelay time.Duration
}

// Throughput returns the episode's goodput in bytes/second.
func (s EpisodeStats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BytesSent) / s.Duration.Seconds()
}

// DropRate returns the fraction of the episode's released messages the
// transport shed (0 when nothing was sent).
func (s EpisodeStats) DropRate() float64 {
	if s.MsgsSent <= 0 {
		return 0
	}
	return float64(s.MsgsDropped) / float64(s.MsgsSent)
}

// ProtocolRatioPolicy prescribes the target TCP/UDT ratio over time
// (§IV-C). Update is called once per episode with that episode's
// statistics and returns the ratio for the next episode.
type ProtocolRatioPolicy interface {
	// Initial returns the starting ratio.
	Initial() Ratio
	// Update consumes the last episode's statistics and returns the next
	// target ratio.
	Update(stats EpisodeStats) Ratio
}

// StaticRatio pins the target ratio for the whole run; the reference
// policy used to exercise PSPs and as the TCP/UDT baselines in the
// figures.
type StaticRatio struct {
	R Ratio
}

var _ ProtocolRatioPolicy = StaticRatio{}

// Initial implements ProtocolRatioPolicy.
func (s StaticRatio) Initial() Ratio { return s.R }

// Update implements ProtocolRatioPolicy.
func (s StaticRatio) Update(EpisodeStats) Ratio { return s.R }

// EstimatorKind selects the TD learner's value backend.
type EstimatorKind int

// The three backends of §IV-C3–5.
const (
	// MatrixEstimator is the plain Q(s,a) table (figure 4).
	MatrixEstimator EstimatorKind = iota + 1
	// ModelEstimator collapses Q into V(s) with the ratio-space model
	// (figure 5).
	ModelEstimator
	// ApproxEstimator adds quadratic value approximation (figure 6).
	ApproxEstimator
)

// String implements fmt.Stringer.
func (k EstimatorKind) String() string {
	switch k {
	case MatrixEstimator:
		return "matrix"
	case ModelEstimator:
		return "model"
	case ApproxEstimator:
		return "approx"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// LearnerConfig parameterises TDRatioLearner. Zero values take the
// paper's figure-4 defaults.
type LearnerConfig struct {
	// Estimator picks the value backend (default ApproxEstimator).
	Estimator EstimatorKind
	// Grid is the inverse ratio step κ⁻¹ (default 5, i.e. 11 states from
	// −1 to 1 in steps of 1/5).
	Grid int
	// MaxStep bounds actions to ±MaxStep grid steps per episode
	// (default 2, giving 5 actions).
	MaxStep int
	// Alpha, Gamma, Lambda are the Sarsa(λ) parameters (defaults 0.5,
	// 0.5, 0.85 as in §IV-C3).
	Alpha, Gamma, Lambda float64
	// EpsMax, EpsMin, EpsDecay parameterise exploration (defaults 0.8,
	// 0.1, 0.01; figures 5–6 use EpsMax 0.3).
	EpsMax, EpsMin, EpsDecay float64
	// Initial is the starting ratio (default Even).
	Initial Ratio
	// RewardScale divides throughput rewards into a convenient range
	// (default 1 MB/s per reward unit).
	RewardScale float64
	// LatencyWeight scales the queue-delay penalty subtracted from the
	// reward (reward units per second of average interceptor queueing).
	// Zero disables the penalty. The paper's learner "uses collected
	// throughput and latency statistics as rewards" (§IV-C2); a positive
	// weight biases the learner towards ratios that keep the stream
	// responsive, not just fast.
	LatencyWeight float64
	// DropWeight scales the overload penalty subtracted from the reward
	// (reward units per unit drop rate). Zero disables it. With the
	// transport's queue policies active, an episode's DropRate is the
	// sharpest overload signal the learner gets — a ratio that overruns
	// a lane's pending queue sheds messages the same episode, where the
	// queue-delay penalty only climbs once backlogs are already deep.
	DropWeight float64
	// Rand is required for reproducible exploration.
	Rand *rand.Rand
}

func (c *LearnerConfig) applyDefaults() {
	if c.Estimator == 0 {
		c.Estimator = ApproxEstimator
	}
	if c.Grid <= 0 {
		c.Grid = 5
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 2
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Gamma == 0 {
		c.Gamma = 0.5
	}
	if c.Lambda == 0 {
		c.Lambda = 0.85
	}
	if c.EpsMax == 0 {
		c.EpsMax = 0.8
	}
	if c.EpsMin == 0 {
		c.EpsMin = 0.1
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 0.01
	}
	if c.Initial == (Ratio{}) {
		c.Initial = Even
	}
	if c.RewardScale == 0 {
		c.RewardScale = 1 << 20
	}
}

// TDRatioLearner adapts the target ratio online with Sarsa(λ) (§IV-C2).
// States are the discretised ratio grid; actions move up to MaxStep grid
// steps per episode; rewards are episode throughput.
type TDRatioLearner struct {
	cfg     LearnerConfig
	sarsa   *rl.Sarsa
	states  int
	actions int
	state   rl.State
	started bool
}

var _ ProtocolRatioPolicy = (*TDRatioLearner)(nil)

// NewTDRatioLearner builds the learner; cfg.Rand is required.
func NewTDRatioLearner(cfg LearnerConfig) (*TDRatioLearner, error) {
	cfg.applyDefaults()
	if cfg.Rand == nil {
		return nil, fmt.Errorf("data: LearnerConfig.Rand is required")
	}
	states := 2*cfg.Grid + 1
	actions := 2*cfg.MaxStep + 1
	model := ratioModel(states, cfg.MaxStep)

	var est rl.Estimator
	switch cfg.Estimator {
	case MatrixEstimator:
		est = rl.NewMatrix(states, actions)
	case ModelEstimator:
		est = rl.NewModelBased(states, model)
	case ApproxEstimator:
		est = rl.NewApprox(states, model)
	default:
		return nil, fmt.Errorf("data: unknown estimator kind %v", cfg.Estimator)
	}

	sarsa, err := rl.NewSarsa(rl.Config{
		States: states, Actions: actions,
		Alpha: cfg.Alpha, Gamma: cfg.Gamma, Lambda: cfg.Lambda,
		EpsMax: cfg.EpsMax, EpsMin: cfg.EpsMin, EpsDecay: cfg.EpsDecay,
		Estimator: est,
		Rand:      cfg.Rand,
	})
	if err != nil {
		return nil, fmt.Errorf("data: building learner: %w", err)
	}
	l := &TDRatioLearner{
		cfg:     cfg,
		sarsa:   sarsa,
		states:  states,
		actions: actions,
	}
	l.state = l.stateOf(cfg.Initial)
	return l, nil
}

// ratioModel is the paper's environment model M(s,a) = clamp(s+Δa) over
// the ratio grid (§IV-C4).
func ratioModel(states, maxStep int) rl.Model {
	return func(s rl.State, a rl.Action) rl.State {
		sp := int(s) + int(a) - maxStep
		if sp < 0 {
			sp = 0
		}
		if sp >= states {
			sp = states - 1
		}
		return rl.State(sp)
	}
}

// stateOf quantises a ratio onto the grid.
func (l *TDRatioLearner) stateOf(r Ratio) rl.State {
	steps := int(r.UDTFraction()*float64(l.states-1) + 0.5)
	return rl.State(steps)
}

// ratioOf converts a grid state back into a ratio.
func (l *TDRatioLearner) ratioOf(s rl.State) Ratio {
	r, err := NewRatio(int(s), l.states-1)
	if err != nil {
		panic(err) // unreachable: s ∈ [0, states-1]
	}
	return r
}

// Initial implements ProtocolRatioPolicy.
func (l *TDRatioLearner) Initial() Ratio { return l.cfg.Initial }

// reward converts one episode's statistics into the Sarsa(λ) reward:
// scaled throughput minus the optional queue-delay and drop-rate
// penalties.
func (l *TDRatioLearner) reward(stats EpisodeStats) float64 {
	reward := stats.Throughput() / l.cfg.RewardScale
	reward -= l.cfg.LatencyWeight * stats.AvgQueueDelay.Seconds()
	reward -= l.cfg.DropWeight * stats.DropRate()
	return reward
}

// Update implements ProtocolRatioPolicy: one Sarsa(λ) step per episode,
// rewarded with the episode's throughput minus the optional queue-delay
// and overload (drop-rate) penalties.
func (l *TDRatioLearner) Update(stats EpisodeStats) Ratio {
	reward := l.reward(stats)
	var action rl.Action
	if !l.started {
		action = l.sarsa.Start(l.state)
		l.started = true
		// The very first episode has no prior action to reward; move
		// immediately so exploration begins.
		l.state = ratioModel(l.states, l.cfg.MaxStep)(l.state, action)
		return l.ratioOf(l.state)
	}
	action = l.sarsa.Step(reward, l.state)
	l.state = ratioModel(l.states, l.cfg.MaxStep)(l.state, action)
	return l.ratioOf(l.state)
}

// Epsilon exposes the current exploration rate for instrumentation.
func (l *TDRatioLearner) Epsilon() float64 { return l.sarsa.Epsilon() }

// State exposes the current grid state for instrumentation.
func (l *TDRatioLearner) State() int { return int(l.state) }

// Balance returns the current target in the figures' [−1,1] form.
func (l *TDRatioLearner) Balance() float64 { return l.ratioOf(l.state).Balance() }

// NewTDRatioLearnerWithEstimator builds a learner around a caller-supplied
// estimator (instrumentation/testing hook); the estimator must match the
// grid dimensions implied by cfg.
func NewTDRatioLearnerWithEstimator(cfg LearnerConfig, est rl.Estimator) (*TDRatioLearner, error) {
	cfg.applyDefaults()
	if cfg.Rand == nil {
		return nil, fmt.Errorf("data: LearnerConfig.Rand is required")
	}
	states := 2*cfg.Grid + 1
	actions := 2*cfg.MaxStep + 1
	sarsa, err := rl.NewSarsa(rl.Config{
		States: states, Actions: actions,
		Alpha: cfg.Alpha, Gamma: cfg.Gamma, Lambda: cfg.Lambda,
		EpsMax: cfg.EpsMax, EpsMin: cfg.EpsMin, EpsDecay: cfg.EpsDecay,
		Estimator: est,
		Rand:      cfg.Rand,
	})
	if err != nil {
		return nil, fmt.Errorf("data: building learner: %w", err)
	}
	l := &TDRatioLearner{cfg: cfg, sarsa: sarsa, states: states, actions: actions}
	l.state = l.stateOf(cfg.Initial)
	return l, nil
}
