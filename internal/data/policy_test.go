package data

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

// --- PSPs --------------------------------------------------------------------

func TestRandomSelectionLongRunRatio(t *testing.T) {
	target := MustRatio(4, 5)
	s := NewRandomSelection(target, rand.New(rand.NewSource(1)))
	udt := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Select() == core.UDT {
			udt++
		}
	}
	got := float64(udt) / n
	if math.Abs(got-target.UDTFraction()) > 0.01 {
		t.Fatalf("long-run UDT fraction = %.3f, want ≈%.3f", got, target.UDTFraction())
	}
	if !s.Ratio().Equal(target) {
		t.Fatal("Ratio() does not return target")
	}
}

func TestRandomSelectionPureRatios(t *testing.T) {
	s := NewRandomSelection(PureTCP, rand.New(rand.NewSource(1)))
	for i := 0; i < 100; i++ {
		if s.Select() != core.TCP {
			t.Fatal("pure-TCP random selection emitted UDT")
		}
	}
	s.SetRatio(PureUDT)
	for i := 0; i < 100; i++ {
		if s.Select() != core.UDT {
			t.Fatal("pure-UDT random selection emitted TCP")
		}
	}
}

func TestNewRandomSelectionNilRandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil rng")
		}
	}()
	NewRandomSelection(Even, nil)
}

func TestPatternSelectionExactPerPeriod(t *testing.T) {
	target := MustRatio(3, 10)
	s := NewPatternSelection(target)
	udt := 0
	for i := 0; i < 10; i++ {
		if s.Select() == core.UDT {
			udt++
		}
	}
	if udt != 3 {
		t.Fatalf("one period emitted %d UDT, want 3", udt)
	}
}

func TestPatternSelectionKeepsPositionOnSameRatio(t *testing.T) {
	s := NewPatternSelection(MustRatio(1, 3))
	first := s.Select()
	s.SetRatio(MustRatio(2, 6)) // same mix, different literal
	second := s.Select()
	third := s.Select()
	period := []core.Transport{first, second, third}
	if countUDT(period) != 1 {
		t.Fatalf("position reset on equivalent ratio: period %v", period)
	}
}

func TestPatternSelectionRestartsOnNewRatio(t *testing.T) {
	s := NewPatternSelection(PureTCP)
	for i := 0; i < 5; i++ {
		s.Select()
	}
	s.SetRatio(PureUDT)
	if s.Select() != core.UDT {
		t.Fatal("pattern not rebuilt after ratio change")
	}
	if !s.Ratio().Equal(PureUDT) {
		t.Fatal("Ratio() stale after SetRatio")
	}
}

// --- PRPs --------------------------------------------------------------------

func TestStaticRatio(t *testing.T) {
	p := StaticRatio{R: Even}
	if !p.Initial().Equal(Even) {
		t.Fatal("Initial() mismatch")
	}
	if !p.Update(EpisodeStats{}).Equal(Even) {
		t.Fatal("Update() changed a static ratio")
	}
}

func TestEpisodeStatsThroughput(t *testing.T) {
	s := EpisodeStats{Duration: 2 * time.Second, BytesSent: 4 << 20}
	if got := s.Throughput(); got != 2<<20 {
		t.Fatalf("Throughput = %v, want 2 MiB/s", got)
	}
	if (EpisodeStats{}).Throughput() != 0 {
		t.Fatal("zero-duration throughput not 0")
	}
}

func TestNewTDRatioLearnerRequiresRand(t *testing.T) {
	if _, err := NewTDRatioLearner(LearnerConfig{}); err == nil {
		t.Fatal("NewTDRatioLearner accepted nil Rand")
	}
}

func TestNewTDRatioLearnerUnknownEstimator(t *testing.T) {
	_, err := NewTDRatioLearner(LearnerConfig{
		Estimator: EstimatorKind(99),
		Rand:      rand.New(rand.NewSource(1)),
	})
	if err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestEstimatorKindString(t *testing.T) {
	for _, k := range []EstimatorKind{MatrixEstimator, ModelEstimator, ApproxEstimator} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if EstimatorKind(42).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

// driveLearner feeds the learner a synthetic environment where throughput
// decreases linearly with the UDT fraction (TCP is the strong protocol,
// as in figures 4–6) and returns the balance trajectory.
func driveLearner(t *testing.T, kind EstimatorKind, episodes int, seed int64) []float64 {
	t.Helper()
	l, err := NewTDRatioLearner(LearnerConfig{
		Estimator: kind,
		EpsMax:    0.3, EpsMin: 0.05, EpsDecay: 0.01,
		Rand: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The realistic DATA-stream shape: the interceptor's head-of-line
	// blocking throttles the stream to the slower lane's pace, so with
	// UDT fraction f, R = min(tcp/(1−f), udt/f); tcp = 100 MB/s,
	// udt = 10 MB/s — the learner-figure environment.
	throughput := func(balance float64) float64 {
		f := (balance + 1) / 2
		const tcp, udt = 100 * (1 << 20), 10 * (1 << 20)
		switch {
		case f == 0:
			return tcp
		case f == 1:
			return udt
		default:
			return math.Min(tcp/(1-f), udt/f)
		}
	}
	var trajectory []float64
	r := l.Initial()
	for i := 0; i < episodes; i++ {
		stats := EpisodeStats{
			Duration:  time.Second,
			BytesSent: int64(throughput(r.Balance())),
			MsgsSent:  1600,
		}
		r = l.Update(stats)
		trajectory = append(trajectory, r.Balance())
	}
	return trajectory
}

func TestTDRatioLearnerConvergesToTCP(t *testing.T) {
	traj := driveLearner(t, ApproxEstimator, 120, 3)
	// Count tail time spent at or near pure TCP (balance ≤ −0.8).
	near := 0
	tail := traj[len(traj)-30:]
	for _, b := range tail {
		if b <= -0.6 {
			near++
		}
	}
	if near < 20 {
		t.Fatalf("approx learner near pure TCP only %d/30 tail episodes; trajectory tail %v",
			near, tail)
	}
}

func TestTDRatioLearnerModelBackendConverges(t *testing.T) {
	traj := driveLearner(t, ModelEstimator, 300, 3)
	near := 0
	tail := traj[len(traj)-50:]
	for _, b := range tail {
		if b <= -0.6 {
			near++
		}
	}
	if near < 30 {
		t.Fatalf("model learner near pure TCP only %d/50 tail episodes", near)
	}
}

func TestTDRatioLearnerStateAccessors(t *testing.T) {
	l, err := NewTDRatioLearner(LearnerConfig{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if l.Epsilon() <= 0 {
		t.Fatal("epsilon not positive")
	}
	if got := l.Balance(); got != 0 {
		t.Fatalf("initial balance = %v, want 0 (Even)", got)
	}
	if l.State() != 5 {
		t.Fatalf("initial grid state = %d, want 5", l.State())
	}
}

func TestTDRatioLearnerStaysOnGrid(t *testing.T) {
	l, err := NewTDRatioLearner(LearnerConfig{
		Estimator: MatrixEstimator,
		Rand:      rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		r := l.Update(EpisodeStats{Duration: time.Second, BytesSent: 1 << 20})
		b := r.Balance()
		if b < -1 || b > 1 {
			t.Fatalf("balance %v escaped [-1,1]", b)
		}
		// Must be a κ=1/5 grid point.
		scaled := (b + 1) * 5
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("balance %v not on the κ=1/5 grid", b)
		}
	}
}

func TestTDRatioLearnerLatencyPenalty(t *testing.T) {
	// Two ratios with equal throughput but very different queueing delay:
	// with a latency weight the learner must prefer the low-delay one.
	// Environment: UDT-heavy ratios deliver the same bytes but with
	// seconds of interceptor queueing (slow lane); TCP-heavy ratios are
	// prompt.
	l, err := NewTDRatioLearner(LearnerConfig{
		Estimator: ApproxEstimator,
		EpsMax:    0.3, EpsMin: 0.05, EpsDecay: 0.01,
		LatencyWeight: 50, // reward units per second of queue delay
		Rand:          rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := l.Initial()
	for i := 0; i < 150; i++ {
		f := r.UDTFraction()
		stats := EpisodeStats{
			Duration:      time.Second,
			BytesSent:     30 << 20, // flat throughput everywhere
			MsgsSent:      480,
			AvgQueueDelay: time.Duration(f * float64(2*time.Second)),
		}
		r = l.Update(stats)
	}
	if b := l.Balance(); b > -0.5 {
		t.Fatalf("latency-weighted learner settled at balance %+.1f, want ≤ -0.5", b)
	}
}

func TestTDRatioLearnerZeroLatencyWeightIgnoresDelay(t *testing.T) {
	// Without a weight, the same environment gives a flat reward and the
	// learner has no gradient to follow — it must not crash and must
	// stay on the grid.
	l, err := NewTDRatioLearner(LearnerConfig{
		Estimator: ApproxEstimator,
		Rand:      rand.New(rand.NewSource(12)),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := l.Initial()
	for i := 0; i < 50; i++ {
		f := r.UDTFraction()
		r = l.Update(EpisodeStats{
			Duration:      time.Second,
			BytesSent:     30 << 20,
			AvgQueueDelay: time.Duration(f * float64(2*time.Second)),
		})
		if b := r.Balance(); b < -1 || b > 1 {
			t.Fatalf("balance %v escaped the grid", b)
		}
	}
}
