package pingpong

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

func TestSerializationRoundTrip(t *testing.T) {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	ping := &Ping{
		Src:   core.MustParseAddress("10.0.0.1:1"),
		Dst:   core.MustParseAddress("10.0.0.2:2"),
		Proto: core.TCP,
		Seq:   42,
	}
	pong := &Pong{
		Src:   core.MustParseAddress("10.0.0.2:2"),
		Dst:   core.MustParseAddress("10.0.0.1:1"),
		Proto: core.TCP,
		Seq:   42,
	}
	var buf bytes.Buffer
	if err := reg.Encode(&buf, ping); err != nil {
		t.Fatal(err)
	}
	if err := reg.Encode(&buf, pong); err != nil {
		t.Fatal(err)
	}
	v1, err := reg.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotPing, ok := v1.(*Ping)
	if !ok || gotPing.Seq != 42 || gotPing.Proto != core.TCP {
		t.Fatalf("decoded ping = %#v", v1)
	}
	gotPong, ok := v2.(*Pong)
	if !ok || gotPong.Seq != 42 {
		t.Fatalf("decoded pong = %#v", v2)
	}
	if !gotPing.Header().Source().SameHostAs(ping.Src) {
		t.Fatal("ping header corrupted")
	}
}

func TestSerializersRejectWrongTypes(t *testing.T) {
	var buf bytes.Buffer
	if err := (pingSerializer{}).Serialize(&buf, 7); err == nil {
		t.Fatal("pingSerializer accepted an int")
	}
	if err := (pongSerializer{}).Serialize(&buf, 7); err == nil {
		t.Fatal("pongSerializer accepted an int")
	}
}

// rttWatcher collects RTT samples from the ping port.
type rttWatcher struct {
	port *kompics.Port
	comp *kompics.Component

	mu      sync.Mutex
	samples []RTTSample
}

type startPing struct{}

func (w *rttWatcher) Init(ctx *kompics.Context) {
	w.comp = ctx.Component()
	w.port = ctx.Requires(PingPort)
	ctx.Subscribe(w.port, RTTSample{}, func(e kompics.Event) {
		w.mu.Lock()
		w.samples = append(w.samples, e.(RTTSample))
		w.mu.Unlock()
	})
	ctx.SubscribeSelf(startPing{}, func(kompics.Event) {
		ctx.Trigger(StartPinging{}, w.port)
	})
}

func (w *rttWatcher) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.samples)
}

func freeTestPort(t *testing.T) int {
	t.Helper()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < 200; i++ {
		p := 20000 + 2*rng.Intn(20000)
		ok := true
		for _, d := range []int{0, 1} {
			l1, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p+d))
			if err != nil {
				ok = false
				break
			}
			l1.Close()
			l2, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", p+d))
			if err != nil {
				ok = false
				break
			}
			l2.Close()
		}
		if ok {
			return p
		}
	}
	t.Fatal("no free port")
	return 0
}

// waitForListener blocks until a TCP listener on 127.0.0.1:port accepts,
// failing the test if it never comes up.
func waitForListener(t *testing.T, port int) {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("listener on %s never came up", addr)
}

func TestPingPongOverLoopback(t *testing.T) {
	// Arm bufpool's leak accounting for the whole exchange; registered
	// before the systems' own Cleanups so the assertion runs (LIFO) after
	// both nodes shut down and every wire buffer has been recycled.
	bufpool.ResetStats()
	bufpool.SetDebug(true)
	t.Cleanup(func() {
		bufpool.SetDebug(false)
		if n := bufpool.Outstanding(); n != 0 {
			t.Errorf("bufpool leak: %d buffer(s) outstanding after shutdown", n)
		}
	})

	portA := freeTestPort(t)
	portB := freeTestPort(t)
	selfA := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", portA))
	selfB := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", portB))

	newNode := func(self core.BasicAddress) (*kompics.System, *core.Network) {
		reg := core.NewRegistry()
		if err := Register(reg); err != nil {
			t.Fatal(err)
		}
		netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		sys := kompics.NewSystem()
		t.Cleanup(sys.Shutdown)
		c := sys.Create(netDef)
		sys.Start(c)
		return sys, netDef
	}

	sysA, netA := newNode(selfA)
	sysB, netB := newNode(selfB)

	pinger := NewPinger(PingerConfig{
		Self: selfA, Dest: selfB, Proto: core.TCP,
		Interval: 5 * time.Millisecond, Count: 10,
	})
	pingerComp := sysA.Create(pinger)
	kompics.MustConnect(netA.Port(), pinger.NetPort())

	ponger := NewPonger(selfB)
	pongerComp := sysB.Create(ponger)
	kompics.MustConnect(netB.Port(), ponger.NetPort())

	watch := &rttWatcher{}
	watchComp := sysA.Create(watch)
	kompics.MustConnect(pinger.Port(), watch.port)

	sysA.Start(pingerComp)
	sysB.Start(pongerComp)
	sysA.Start(watchComp)
	// Listeners come up asynchronously on Start. A probe sent before the
	// ponger (or the pong's return path) accepts connections is lost to a
	// refused dial, and the pinger never resends a sequence number — so
	// wait for both sides before the first ping.
	waitForListener(t, portA)
	waitForListener(t, portB)
	watch.comp.SelfTrigger(startPing{})

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && watch.count() < 10 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := watch.count(); got < 10 {
		t.Fatalf("collected %d RTT samples, want 10", got)
	}
	watch.mu.Lock()
	defer watch.mu.Unlock()
	for _, s := range watch.samples {
		if s.RTT <= 0 || s.RTT > 5*time.Second {
			t.Fatalf("implausible RTT %v", s.RTT)
		}
	}
	if pinger.RTTs().N() < 10 {
		t.Fatalf("sample accessor has %d entries", pinger.RTTs().N())
	}
}
