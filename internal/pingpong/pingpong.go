// Package pingpong implements the control-message workload of §V-A:
// timing-sensitive "ping" messages answered by "pongs", with the sender
// measuring round-trip times. In the evaluation these latency probes run
// concurrently with bulk transfers to quantify how much data traffic
// delays control traffic on each transport combination (figure 8).
package pingpong

import (
	"fmt"
	"io"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
)

// Ping is the probe message.
type Ping struct {
	Src, Dst core.BasicAddress
	Proto    core.Transport
	Seq      uint64
}

// Pong is the reply, echoing the probe's sequence number.
type Pong struct {
	Src, Dst core.BasicAddress
	Proto    core.Transport
	Seq      uint64
}

var (
	_ core.Msg = &Ping{}
	_ core.Msg = &Pong{}
)

// Header implements core.Msg.
func (p *Ping) Header() core.Header { return core.NewHeader(p.Src, p.Dst, p.Proto) }

// Header implements core.Msg.
func (p *Pong) Header() core.Header { return core.NewHeader(p.Src, p.Dst, p.Proto) }

// Serializer IDs for the ping/pong wire codecs.
const (
	PingSerializerID codec.SerializerID = 17
	PongSerializerID codec.SerializerID = 18
)

type pingSerializer struct{}
type pongSerializer struct{}

func (pingSerializer) ID() codec.SerializerID { return PingSerializerID }
func (pongSerializer) ID() codec.SerializerID { return PongSerializerID }

func (pingSerializer) Serialize(w io.Writer, v interface{}) error {
	m, ok := v.(*Ping)
	if !ok {
		return fmt.Errorf("pingpong: cannot encode %T as Ping", v)
	}
	return writeProbe(w, m.Src, m.Dst, m.Proto, m.Seq)
}

func (pongSerializer) Serialize(w io.Writer, v interface{}) error {
	m, ok := v.(*Pong)
	if !ok {
		return fmt.Errorf("pingpong: cannot encode %T as Pong", v)
	}
	return writeProbe(w, m.Src, m.Dst, m.Proto, m.Seq)
}

func (pingSerializer) Deserialize(r io.Reader) (interface{}, error) {
	src, dst, proto, seq, err := readProbe(r)
	if err != nil {
		return nil, err
	}
	return &Ping{Src: src, Dst: dst, Proto: proto, Seq: seq}, nil
}

func (pongSerializer) Deserialize(r io.Reader) (interface{}, error) {
	src, dst, proto, seq, err := readProbe(r)
	if err != nil {
		return nil, err
	}
	return &Pong{Src: src, Dst: dst, Proto: proto, Seq: seq}, nil
}

func writeProbe(w io.Writer, src, dst core.BasicAddress, proto core.Transport, seq uint64) error {
	if err := core.WriteBasicHeader(w, core.NewHeader(src, dst, proto)); err != nil {
		return err
	}
	return codec.WriteUvarint(w, seq)
}

func readProbe(r io.Reader) (src, dst core.BasicAddress, proto core.Transport, seq uint64, err error) {
	hdr, err := core.ReadBasicHeader(r)
	if err != nil {
		return core.BasicAddress{}, core.BasicAddress{}, 0, 0, err
	}
	seq, err = codec.ReadUvarint(r)
	if err != nil {
		return core.BasicAddress{}, core.BasicAddress{}, 0, 0, err
	}
	src, _ = hdr.Src.(core.BasicAddress)
	dst, _ = hdr.Dst.(core.BasicAddress)
	return src, dst, hdr.Proto, seq, nil
}

// Register adds the ping/pong serialisers to a registry.
func Register(reg *codec.Registry) error {
	if err := reg.Register(pingSerializer{}, (*Ping)(nil)); err != nil {
		return err
	}
	return reg.Register(pongSerializer{}, (*Pong)(nil))
}

// PingPort reports measured round trips.
var PingPort = kompics.NewPortType("PingPong").
	Indication(RTTSample{}).
	Request(StartPinging{})

// StartPinging asks a Pinger to begin probing.
type StartPinging struct{}

// RTTSample is one measured round trip.
type RTTSample struct {
	Seq uint64
	RTT time.Duration
}

// PingerConfig parameterises a Pinger.
type PingerConfig struct {
	// Self and Dest are the endpoints.
	Self, Dest core.BasicAddress
	// Proto is the transport for probes.
	Proto core.Transport
	// Interval between probes (default 100 ms).
	Interval time.Duration
	// Count stops probing after this many pongs; 0 means unbounded.
	Count int
}

// Pinger sends probes at a fixed interval and publishes RTT samples.
type Pinger struct {
	cfg PingerConfig

	ctx      *kompics.Context
	comp     *kompics.Component
	netPort  *kompics.Port
	pingPort *kompics.Port

	seq      uint64
	sentAt   map[uint64]time.Time
	rtts     stats.Sample
	running  bool
	received int
}

var _ kompics.Definition = (*Pinger)(nil)

// NewPinger builds the component definition.
func NewPinger(cfg PingerConfig) *Pinger {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	return &Pinger{cfg: cfg, sentAt: make(map[uint64]time.Time)}
}

// NetPort returns the required network port for wiring.
func (p *Pinger) NetPort() *kompics.Port { return p.netPort }

// Port returns the provided ping port.
func (p *Pinger) Port() *kompics.Port { return p.pingPort }

// RTTs returns a snapshot of collected samples. Call only after the
// system has quiesced (or from a connected component).
func (p *Pinger) RTTs() *stats.Sample { return &p.rtts }

type tick struct{}

// Init implements kompics.Definition.
func (p *Pinger) Init(ctx *kompics.Context) {
	p.ctx = ctx
	p.comp = ctx.Component()
	p.netPort = ctx.Requires(core.NetworkPort)
	p.pingPort = ctx.Provides(PingPort)

	ctx.Subscribe(p.pingPort, StartPinging{}, func(kompics.Event) {
		if p.running {
			return
		}
		p.running = true
		p.sendProbe()
	})
	ctx.Subscribe(p.netPort, (*core.Msg)(nil), func(e kompics.Event) {
		pong, ok := e.(*Pong)
		if !ok {
			return
		}
		p.onPong(pong)
	})
	ctx.SubscribeSelf(tick{}, func(kompics.Event) {
		if p.running {
			p.sendProbe()
		}
	})
}

func (p *Pinger) sendProbe() {
	if p.cfg.Count > 0 && p.seq >= uint64(p.cfg.Count) {
		return
	}
	p.seq++
	seq := p.seq
	p.sentAt[seq] = p.ctx.System().Clock().Now()
	p.ctx.Trigger(&Ping{Src: p.cfg.Self, Dst: p.cfg.Dest, Proto: p.cfg.Proto, Seq: seq}, p.netPort)
	p.ctx.System().Clock().AfterFunc(p.cfg.Interval, func() {
		p.comp.SelfTrigger(tick{})
	})
}

func (p *Pinger) onPong(pong *Pong) {
	sent, ok := p.sentAt[pong.Seq]
	if !ok {
		return
	}
	delete(p.sentAt, pong.Seq)
	rtt := p.ctx.System().Clock().Now().Sub(sent)
	p.rtts.Add(rtt.Seconds())
	p.received++
	p.ctx.Trigger(RTTSample{Seq: pong.Seq, RTT: rtt}, p.pingPort)
}

// Ponger answers every Ping with a Pong over the same transport.
type Ponger struct {
	self    core.BasicAddress
	ctx     *kompics.Context
	netPort *kompics.Port
}

var _ kompics.Definition = (*Ponger)(nil)

// NewPonger builds the component definition.
func NewPonger(self core.BasicAddress) *Ponger {
	return &Ponger{self: self}
}

// NetPort returns the required network port for wiring.
func (p *Ponger) NetPort() *kompics.Port { return p.netPort }

// Init implements kompics.Definition.
func (p *Ponger) Init(ctx *kompics.Context) {
	p.ctx = ctx
	p.netPort = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(p.netPort, (*core.Msg)(nil), func(e kompics.Event) {
		ping, ok := e.(*Ping)
		if !ok {
			return
		}
		reply := &Pong{
			Src:   p.self,
			Dst:   ping.Src,
			Proto: ping.Proto,
			Seq:   ping.Seq,
		}
		ctx.Trigger(reply, p.netPort)
	})
}
