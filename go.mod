module github.com/kompics/kompicsmessaging-go

go 1.22
