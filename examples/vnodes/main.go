// Virtual nodes: several addressable component subtrees share one network
// endpoint. Intra-host messages are reflected by the network component
// without serialisation and routed to the right vnode by channel
// selectors — §III-B of the paper.
//
//	go run ./examples/vnodes
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/vnet"
)

// worker is one vnode: it answers any message with an acknowledgement to
// the sender's vnode.
type worker struct {
	id   []byte
	self core.BasicAddress

	net  *kompics.Port
	comp *kompics.Component
	out  chan string
}

type sendTo struct {
	dst     vnet.Address
	payload string
}

func (w *worker) Init(ctx *kompics.Context) {
	w.comp = ctx.Component()
	w.net = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(w.net, (*core.Msg)(nil), func(e kompics.Event) {
		m, ok := e.(*vnet.Msg)
		if !ok {
			return
		}
		w.out <- fmt.Sprintf("vnode %q received %q from %v", w.id, m.Payload, m.Src)
		if string(m.Payload) != "ack" {
			reply := &vnet.Msg{
				Src: m.Dst, Dst: m.Src, Proto: core.TCP, Payload: []byte("ack"),
			}
			ctx.Trigger(reply, w.net)
		}
	})
	ctx.SubscribeSelf(sendTo{}, func(e kompics.Event) {
		req := e.(sendTo)
		msg := &vnet.Msg{
			Src:     vnet.NewAddress(w.self, w.id),
			Dst:     req.dst,
			Proto:   core.TCP,
			Payload: []byte(req.payload),
		}
		ctx.Trigger(msg, w.net)
	})
}

func main() {
	self := core.MustParseAddress("127.0.0.1:9120")
	reg := core.NewRegistry()
	if err := vnet.Register(reg); err != nil {
		log.Fatal(err)
	}
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	sys := kompics.NewSystem()
	defer sys.Shutdown()
	netComp := sys.Create(netDef)

	out := make(chan string, 8)
	mk := func(id string) *worker {
		w := &worker{id: []byte(id), self: self, out: out}
		c := sys.Create(w)
		// The vnet selector is the VirtualNetworkChannel: only messages
		// addressed to this vnode cross the channel.
		kompics.MustConnect(netDef.Port(), w.net,
			kompics.WithIndicationSelector(vnet.Selector([]byte(id))))
		sys.Start(c)
		return w
	}
	storage := mk("storage")
	compute := mk("compute")
	_ = compute

	sys.Start(netComp)

	// storage → compute on the same host: reflected locally, never
	// serialised, and delivered only to the "compute" subtree.
	storage.comp.SelfTrigger(sendTo{
		dst:     vnet.NewAddress(self, []byte("compute")),
		payload: "task: index shard 7",
	})

	for i := 0; i < 2; i++ {
		select {
		case line := <-out:
			fmt.Println(line)
		case <-time.After(10 * time.Second):
			log.Fatal("timed out")
		}
	}
}
