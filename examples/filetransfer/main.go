// File transfer over the adaptive DATA meta-protocol: two in-process
// nodes on loopback move a 32 MB incompressible dataset through the
// interceptor, which splits chunks between real TCP and UDT connections
// per the selection pattern.
//
//	go run ./examples/filetransfer
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/filetransfer"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

func newNode(self core.BasicAddress) (*kompics.System, *core.Network) {
	reg := core.NewRegistry()
	if err := filetransfer.Register(reg); err != nil {
		log.Fatal(err)
	}
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	sys := kompics.NewSystem()
	netComp := sys.Create(netDef)
	sys.Start(netComp)
	return sys, netDef
}

// watcher surfaces transfer completions and starts the transfer.
type watcher struct {
	port *kompics.Port
	comp *kompics.Component
	done chan filetransfer.Complete
}

type start struct{}

func (w *watcher) Init(ctx *kompics.Context) {
	w.comp = ctx.Component()
	w.port = ctx.Requires(filetransfer.TransferPort)
	ctx.Subscribe(w.port, filetransfer.Complete{}, func(e kompics.Event) {
		w.done <- e.(filetransfer.Complete)
	})
	ctx.SubscribeSelf(start{}, func(kompics.Event) {
		ctx.Trigger(filetransfer.StartTransfer{TransferID: 1}, w.port)
	})
}

func main() {
	selfA := core.MustParseAddress("127.0.0.1:9110")
	selfB := core.MustParseAddress("127.0.0.1:9112")

	sysA, netA := newNode(selfA)
	defer sysA.Shutdown()
	sysB, netB := newNode(selfB)
	defer sysB.Shutdown()

	// Sender side: a DataNetwork interposes the adaptive interceptor. A
	// 50-50 static ratio keeps the example deterministic; swap the PRP
	// for data.NewTDRatioLearner to let it adapt online.
	dn, err := data.NewDataNetwork(data.NetworkConfig{
		NewPRP: func() data.ProtocolRatioPolicy { return data.StaticRatio{R: data.Even} },
		OnEpisode: func(dest string, st data.EpisodeStats, next data.Ratio) {
			fmt.Printf("  episode to %s: %.1f MB/s at ratio %+.1f\n",
				dest, st.Throughput()/(1<<20), next.Balance())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = rand.Int // (imported for the learner swap mentioned above)
	dnComp := sysA.Create(dn)
	kompics.MustConnect(netA.Port(), dn.Required())

	dataset, err := filetransfer.NewDataset(42, 32<<20)
	if err != nil {
		log.Fatal(err)
	}
	sender, err := filetransfer.NewSender(filetransfer.SenderConfig{
		Self: selfA, Dest: selfB, Proto: core.DATA,
		Data: dataset, WindowSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	senderComp := sysA.Create(sender)
	kompics.MustConnect(dn.Provided(), sender.NetPort())

	recv := filetransfer.NewReceiver()
	recvComp := sysB.Create(recv)
	kompics.MustConnect(netB.Port(), recv.NetPort())

	wS := &watcher{done: make(chan filetransfer.Complete, 1)}
	wsComp := sysA.Create(wS)
	kompics.MustConnect(sender.Port(), wS.port)
	wR := &watcher{done: make(chan filetransfer.Complete, 1)}
	wrComp := sysB.Create(wR)
	kompics.MustConnect(recv.Port(), wR.port)

	sysA.Start(dnComp)
	sysA.Start(senderComp)
	sysB.Start(recvComp)
	sysA.Start(wsComp)
	sysB.Start(wrComp)

	fmt.Println("transferring 32 MB over DATA (TCP+UDT mix) on loopback…")
	wS.comp.SelfTrigger(start{})

	select {
	case c := <-wR.done:
		rate := float64(c.Bytes) / c.Elapsed.Seconds() / (1 << 20)
		fmt.Printf("receiver: %d bytes in %v (%.1f MB/s)\n",
			c.Bytes, c.Elapsed.Round(time.Millisecond), rate)
	case <-time.After(2 * time.Minute):
		log.Fatal("transfer timed out")
	}
}
