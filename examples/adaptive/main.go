// Adaptive transport selection on a simulated WAN: the Sarsa(λ) learner
// (quadratic value approximation, as in figure 6) shifts a data stream
// between TCP and UDT on the paper's learner environment, converging to
// pure TCP within seconds of virtual time.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bench"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
)

func main() {
	fmt.Println("learner on a 100 MB/s, 20 ms-RTT link where TCP dominates")
	fmt.Println("(virtual time: the 60-second run executes in milliseconds)")
	fmt.Println()

	series, err := bench.LearnerRun(bench.LearnerRunConfig{
		Path:     netsim.SetupLearner,
		Ratio:    bench.LearnerApprox,
		Duration: 60 * time.Second,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("  t   throughput   true-ratio  target   ε")
	for i, p := range series.Points {
		if (i+1)%5 != 0 {
			continue
		}
		fmt.Printf("%3ds   %7.1f MB/s   %+5.2f      %+5.2f   %.2f\n",
			int(p.T.Seconds()), p.Throughput/(1<<20), p.TrueRatio, p.Target, p.Epsilon)
	}

	last := series.Points[len(series.Points)-1]
	fmt.Printf("\nconverged to balance %+.1f (−1 = pure TCP) at %.1f MB/s\n",
		last.Target, last.Throughput/(1<<20))
}
