// Multi-hop relay: a message travels origin → relay → final over real
// loopback connections, and the final node replies directly to the origin
// — the forwarding design the paper's Header interface enables (§III-A,
// listing 5).
//
//	go run ./examples/relay
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/relay"
)

// app consumes routed messages addressed to this node and replies
// directly to the origin.
type app struct {
	name string
	self core.BasicAddress

	port *kompics.Port
	comp *kompics.Component
	out  chan string
}

type send struct{ e kompics.Event }

func (a *app) Init(ctx *kompics.Context) {
	a.comp = ctx.Component()
	a.port = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(a.port, (*core.Msg)(nil), func(e kompics.Event) {
		m, ok := e.(*relay.RoutedMsg)
		if !ok {
			return
		}
		if m.Hdr.Route != nil && m.Hdr.Route.HasNext() {
			return // a Forwarder on this node will relay it
		}
		if !a.self.SameHostAs(m.Hdr.Destination()) {
			return
		}
		a.out <- fmt.Sprintf("%s received %q (source: %v)", a.name, m.Payload, m.Hdr.Source())
		if string(m.Payload) != "direct reply" {
			reply := &relay.RoutedMsg{
				Hdr: core.RoutingHeader{
					Base: core.NewHeader(a.self, m.Hdr.Source(), core.TCP),
				},
				Payload: []byte("direct reply"),
			}
			ctx.Trigger(reply, a.port)
		}
	})
	ctx.SubscribeSelf(send{}, func(e kompics.Event) {
		ctx.Trigger(e.(send).e, a.port)
	})
}

type relayNode struct {
	self core.BasicAddress
	app  *app
	fwd  *relay.Forwarder
}

func startNode(name string, port int, out chan string) *relayNode {
	self := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
	reg := core.NewRegistry()
	if err := relay.Register(reg); err != nil {
		log.Fatal(err)
	}
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	sys := kompics.NewSystem()
	netComp := sys.Create(netDef)

	a := &app{name: name, self: self, out: out}
	appComp := sys.Create(a)
	kompics.MustConnect(netDef.Port(), a.port)

	fwd := relay.NewForwarder(self)
	fwdComp := sys.Create(fwd)
	kompics.MustConnect(netDef.Port(), fwd.NetPort())

	sys.Start(netComp)
	sys.Start(appComp)
	sys.Start(fwdComp)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && netDef.Addr(core.TCP) == "" {
		time.Sleep(time.Millisecond)
	}
	return &relayNode{self: self, app: a, fwd: fwd}
}

func main() {
	out := make(chan string, 8)
	origin := startNode("origin", 9130, out)
	hop := startNode("relay", 9132, out)
	final := startNode("final", 9134, out)

	msg, err := relay.NewRoutedMsg(origin.self,
		[]core.Address{hop.self, final.self},
		core.TCP, []byte("hello through a relay"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing %v → %v → %v; reply goes direct\n",
		origin.self, hop.self, final.self)
	origin.app.comp.SelfTrigger(send{e: msg})

	for i := 0; i < 2; i++ {
		select {
		case line := <-out:
			fmt.Println(line)
		case <-time.After(10 * time.Second):
			log.Fatal("timed out")
		}
	}
	fmt.Printf("relay forwarded %d message(s); the reply bypassed it\n", hop.fwd.Forwarded())
}
