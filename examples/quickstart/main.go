// Quickstart: two KompicsMessaging nodes on loopback exchange greetings,
// each message choosing its transport — the middleware's core idea of
// per-message protocol selection.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// greeter sends one greeting over each wire protocol and prints whatever
// it receives.
type greeter struct {
	name string
	self core.BasicAddress
	peer core.BasicAddress

	net  *kompics.Port
	comp *kompics.Component
	got  chan string
}

// sayHello asks the greeter (in component context) to send its greetings.
type sayHello struct{}

func (g *greeter) Init(ctx *kompics.Context) {
	g.comp = ctx.Component()
	g.net = ctx.Requires(core.NetworkPort)

	ctx.Subscribe(g.net, (*core.Msg)(nil), func(e kompics.Event) {
		if m, ok := e.(*core.DataMsg); ok {
			g.got <- fmt.Sprintf("%s received %q via %v",
				g.name, m.Payload, m.Header().Protocol())
		}
	})
	ctx.SubscribeSelf(sayHello{}, func(kompics.Event) {
		// The header's Transport field selects the protocol per message.
		for _, proto := range []core.Transport{core.TCP, core.UDP, core.UDT} {
			msg := &core.DataMsg{
				Hdr:     core.NewHeader(g.self, g.peer, proto),
				Payload: []byte(fmt.Sprintf("hello from %s over %v", g.name, proto)),
			}
			ctx.Trigger(msg, g.net)
		}
	})
}

func startNode(name string, self, peer core.BasicAddress) (*greeter, *kompics.System) {
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self})
	if err != nil {
		log.Fatal(err)
	}
	sys := kompics.NewSystem()
	netComp := sys.Create(netDef)

	g := &greeter{name: name, self: self, peer: peer, got: make(chan string, 8)}
	gComp := sys.Create(g)
	kompics.MustConnect(netDef.Port(), g.net)

	sys.Start(netComp)
	sys.Start(gComp)
	return g, sys
}

func main() {
	selfA := core.MustParseAddress("127.0.0.1:9100")
	selfB := core.MustParseAddress("127.0.0.1:9102")

	alice, sysA := startNode("alice", selfA, selfB)
	defer sysA.Shutdown()
	bob, sysB := startNode("bob", selfB, selfA)
	defer sysB.Shutdown()

	alice.comp.SelfTrigger(sayHello{})
	bob.comp.SelfTrigger(sayHello{})

	// Expect three greetings on each side (one per protocol).
	for i := 0; i < 6; i++ {
		select {
		case line := <-alice.got:
			fmt.Println(line)
		case line := <-bob.got:
			fmt.Println(line)
		case <-time.After(10 * time.Second):
			fmt.Println("timed out waiting for greetings")
			os.Exit(1)
		}
	}
}
