package main

import (
	"os"
	"testing"
)

// quiet redirects stdout to /dev/null for the duration of a test so the
// figure tables do not pollute test output.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunSingleFigures(t *testing.T) {
	quiet(t)
	for _, fig := range []string{"1", "2"} {
		if err := run([]string{"-fig", fig, "-quick"}); err != nil {
			t.Fatalf("run -fig %s: %v", fig, err)
		}
	}
}

func TestRunFigure9QuickSmallSize(t *testing.T) {
	quiet(t)
	if err := run([]string{"-fig", "9", "-quick", "-size", "32"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	quiet(t)
	if err := run([]string{"-fig", "42"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	quiet(t)
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
