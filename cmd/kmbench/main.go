// Command kmbench regenerates the paper's evaluation figures on the
// simulated testbed and prints the series/rows each figure plots.
//
// Usage:
//
//	kmbench -fig 9            # one figure (1, 2, 4, 5, 6, 8 or 9)
//	kmbench -fig all          # everything
//	kmbench -fig 9 -quick     # reduced dataset/repetitions for a fast look
//	kmbench -fig 2 -seed 7    # change the reproducibility seed
//
// Absolute numbers come from the netsim substrate calibrated to the
// paper's operating points; the shapes (who wins, by what factor, where
// the crossover falls) are the reproduction targets. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kmbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 1, 2, 4, 5, 6, 8, 9 or all")
	seed := fs.Int64("seed", 1, "reproducibility seed")
	quick := fs.Bool("quick", false, "reduced sizes/repetitions for a fast pass")
	size := fs.Int64("size", 0, "figure 9 transfer size in MB (default 395, paper)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	figures := map[string]func(int64, bool, int64) error{
		"1":     runFigure1,
		"2":     runFigure2,
		"4":     runFigure4,
		"5":     runFigure5,
		"6":     runFigure6,
		"8":     runFigure8,
		"9":     runFigure9,
		"sweep": runSweep,
	}
	order := []string{"1", "2", "4", "5", "6", "8", "9", "sweep"}

	want := strings.Split(*fig, ",")
	if *fig == "all" {
		want = order
	}
	for _, f := range want {
		fn, ok := figures[f]
		if !ok {
			return fmt.Errorf("unknown figure %q (have 1, 2, 4, 5, 6, 8, 9, sweep)", f)
		}
		if err := fn(*seed, *quick, *size); err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func mb(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f", bytesPerSec/(1<<20))
}

func runFigure1(seed int64, _ bool, _ int64) error {
	header("Figure 1 — observed selection-ratio distributions (balance: -1 = all TCP, +1 = all UDT)")
	rows := bench.Figure1(seed)
	w := tab()
	fmt.Fprintln(w, "target\tpolicy\twindow\tmin\tp25\tmedian\tp75\tmax\tmean")
	for _, r := range rows {
		fmt.Fprintf(w, "%+.2f\t%s\t%s\t%+.3f\t%+.3f\t%+.3f\t%+.3f\t%+.3f\t%+.3f\n",
			r.Target.Balance(), r.Policy, r.Window,
			r.Box.Min, r.Box.P25, r.Box.Median, r.Box.P75, r.Box.Max, r.Box.Mean)
	}
	return w.Flush()
}

func printLearnerSeries(series []bench.LearnerSeries, every int) error {
	w := tab()
	fmt.Fprintln(w, "t(s)\tseries\tthroughput(MB/s)\ttrue-ratio\ttarget\tε")
	for _, s := range series {
		for i, p := range s.Points {
			if (i+1)%every != 0 {
				continue
			}
			fmt.Fprintf(w, "%d\t%s\t%s\t%+.2f\t%+.2f\t%.2f\n",
				int(p.T.Seconds()), s.Label, mb(p.Throughput), p.TrueRatio, p.Target, p.Epsilon)
		}
	}
	return w.Flush()
}

func runFigure2(seed int64, quick bool, _ int64) error {
	header("Figure 2 — learner with pattern vs probabilistic selection (60 s)")
	series, err := bench.Figure2(seed)
	if err != nil {
		return err
	}
	every := 5
	if quick {
		every = 10
	}
	return printLearnerSeries(series, every)
}

func runLearnerFigure(title string, seed int64, quick bool,
	gen func(int64) ([]bench.LearnerSeries, error)) error {
	header(title)
	series, err := gen(seed)
	if err != nil {
		return err
	}
	every := 10
	if quick {
		every = 20
	}
	return printLearnerSeries(series, every)
}

func runFigure4(seed int64, quick bool, _ int64) error {
	return runLearnerFigure(
		"Figure 4 — TD learner, matrix Q(s,a) backend (120 s; does not converge)",
		seed, quick, bench.Figure4)
}

func runFigure5(seed int64, quick bool, _ int64) error {
	return runLearnerFigure(
		"Figure 5 — TD learner, model-based V(s) backend (120 s; converges ≈20 s)",
		seed, quick, bench.Figure5)
}

func runFigure6(seed int64, quick bool, _ int64) error {
	return runLearnerFigure(
		"Figure 6 — TD learner, quadratic value approximation (120 s; converges in seconds)",
		seed, quick, bench.Figure6)
}

func runFigure8(seed int64, quick bool, _ int64) error {
	header("Figure 8 — control-message RTT with and without parallel data (log-scale in the paper)")
	opts := bench.Fig8Options{Seed: seed}
	if quick {
		opts.Pings = 10
		opts.Warmup = 15 * time.Second
	}
	rows, err := bench.Figure8(opts)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "setup\tscenario\tmean RTT\t±95% CI\tpings")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%d\n",
			r.Setup, r.Scenario, r.MeanRTT.Round(time.Microsecond),
			r.CI95.Round(time.Microsecond), r.Pings)
	}
	return w.Flush()
}

func runFigure9(seed int64, quick bool, sizeMB int64) error {
	header("Figure 9 — disk-to-disk throughput vs RTT (mean ± 95% CI)")
	opts := bench.Fig9Options{Seed: seed}
	if sizeMB > 0 {
		opts.Size = sizeMB << 20
	}
	if quick {
		opts.MinRuns = 5
		opts.MaxRuns = 10
		opts.RSETarget = 0.2
	}
	rows, err := bench.Figure9(opts)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "setup\tRTT\tprotocol\tthroughput(MB/s)\t±95% CI\truns")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%s\t%s\t%d\n",
			r.Setup, r.RTT, r.Proto, mb(r.MeanThroughput), mb(r.CI95), r.Runs)
	}
	return w.Flush()
}

func runSweep(seed int64, quick bool, sizeMB int64) error {
	header("RTT sweep — figure 9's x-axis at a finer resolution (extension)")
	opts := bench.Fig9Options{Seed: seed}
	if sizeMB > 0 {
		opts.Size = sizeMB << 20
	}
	if quick {
		opts.MinRuns = 3
		opts.MaxRuns = 5
		opts.RSETarget = 0.25
	}
	rows, err := bench.ThroughputSweep(bench.DefaultSweepRTTs(), opts)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "RTT\tprotocol\tthroughput(MB/s)\t±95% CI\truns")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%v\t%s\t%s\t%d\n",
			r.RTT, r.Proto, mb(r.MeanThroughput), mb(r.CI95), r.Runs)
	}
	return w.Flush()
}
