// Command kmtransfer streams a synthetic dataset between two
// KompicsMessaging nodes over TCP, UDT or the adaptive DATA meta-protocol
// — the real-network counterpart of the paper's transfer experiments
// (§V-B), with the incompressible pseudorandom dataset standing in for
// the 395 MB NetCDF file.
//
// Receiver, then sender:
//
//	kmtransfer -listen 0.0.0.0:9000
//	kmtransfer -listen 0.0.0.0:9001 -dest 10.0.0.2:9000 -proto data -mb 64
//
// Note: each node binds its TCP and UDP port, plus UDP port+1 for UDT.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/filetransfer"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kmtransfer:", err)
		os.Exit(1)
	}
}

func parseProto(s string) (core.Transport, error) {
	switch strings.ToLower(s) {
	case "tcp":
		return core.TCP, nil
	case "udt":
		return core.UDT, nil
	case "data":
		return core.DATA, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (tcp, udt or data)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kmtransfer", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9000", "this node's address (ip:port)")
	dest := fs.String("dest", "", "receiver address; empty = receive only")
	protoName := fs.String("proto", "tcp", "transport: tcp, udt or data")
	sizeMB := fs.Int64("mb", 395, "dataset size in MB (paper default 395)")
	window := fs.Int("window", 256, "outstanding-chunk window")
	seed := fs.Int64("seed", 1, "dataset seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	self, err := core.ParseAddress(*listen)
	if err != nil {
		return err
	}
	proto, err := parseProto(*protoName)
	if err != nil {
		return err
	}

	reg := core.NewRegistry()
	if err := filetransfer.Register(reg); err != nil {
		return err
	}
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
	if err != nil {
		return err
	}
	sys := kompics.NewSystem()
	defer sys.Shutdown()
	netComp := sys.Create(netDef)
	sys.Start(netComp)

	if *dest == "" {
		return receive(sys, netDef, self)
	}
	return send(sys, netDef, self, *dest, proto, *sizeMB<<20, *window, *seed)
}

func receive(sys *kompics.System, netDef *core.Network, self core.BasicAddress) error {
	recv := filetransfer.NewReceiver()
	recvComp := sys.Create(recv)
	kompics.MustConnect(netDef.Port(), recv.NetPort())

	watch := &watcher{done: make(chan filetransfer.Complete, 1)}
	watchComp := sys.Create(watch)
	kompics.MustConnect(recv.Port(), watch.port)
	sys.Start(recvComp)
	sys.Start(watchComp)

	fmt.Printf("receiving on %s (TCP/UDP %d, UDT %d)\n", self, self.Port(), self.Port()+1)
	for c := range watch.done {
		rate := float64(c.Bytes) / c.Elapsed.Seconds() / (1 << 20)
		fmt.Printf("transfer %d complete: %d bytes in %v (%.2f MB/s)\n",
			c.TransferID, c.Bytes, c.Elapsed.Round(time.Millisecond), rate)
	}
	return nil
}

func send(sys *kompics.System, netDef *core.Network, self core.BasicAddress,
	dest string, proto core.Transport, size int64, window int, seed int64) error {
	destAddr, err := core.ParseAddress(dest)
	if err != nil {
		return err
	}
	dataset, err := filetransfer.NewDataset(seed, size)
	if err != nil {
		return err
	}
	sender, err := filetransfer.NewSender(filetransfer.SenderConfig{
		Self: self, Dest: destAddr, Proto: proto,
		Data: dataset, WindowSize: window,
	})
	if err != nil {
		return err
	}
	senderComp := sys.Create(sender)

	// The DATA pseudo-protocol needs the interceptor between sender and
	// network.
	if proto == core.DATA {
		dn, err := data.NewDataNetwork(data.NetworkConfig{
			NewPRP: func() data.ProtocolRatioPolicy {
				prp, err := data.NewTDRatioLearner(data.LearnerConfig{
					Rand: rand.New(rand.NewSource(seed)),
				})
				if err != nil {
					panic(err) // config is static and valid
				}
				return prp
			},
		})
		if err != nil {
			return err
		}
		dnComp := sys.Create(dn)
		kompics.MustConnect(netDef.Port(), dn.Required())
		kompics.MustConnect(dn.Provided(), sender.NetPort())
		sys.Start(dnComp)
	} else {
		kompics.MustConnect(netDef.Port(), sender.NetPort())
	}

	watch := &watcher{done: make(chan filetransfer.Complete, 1)}
	watchComp := sys.Create(watch)
	kompics.MustConnect(sender.Port(), watch.port)
	sys.Start(senderComp)
	sys.Start(watchComp)
	watch.comp.SelfTrigger(kick{})

	fmt.Printf("sending %d MB to %s over %v…\n", size>>20, destAddr, proto)
	c := <-watch.done
	rate := float64(c.Bytes) / c.Elapsed.Seconds() / (1 << 20)
	fmt.Printf("sent %d bytes in %v (%.2f MB/s, sender-side)\n",
		c.Bytes, c.Elapsed.Round(time.Millisecond), rate)
	return nil
}

// watcher bridges TransferPort completions to the CLI and kicks off the
// transfer from component context.
type watcher struct {
	port *kompics.Port
	comp *kompics.Component
	done chan filetransfer.Complete
}

type kick struct{}

func (w *watcher) Init(ctx *kompics.Context) {
	w.comp = ctx.Component()
	w.port = ctx.Requires(filetransfer.TransferPort)
	ctx.Subscribe(w.port, filetransfer.Complete{}, func(e kompics.Event) {
		w.done <- e.(filetransfer.Complete)
	})
	ctx.SubscribeSelf(kick{}, func(kompics.Event) {
		ctx.Trigger(filetransfer.StartTransfer{TransferID: 1}, w.port)
	})
}
