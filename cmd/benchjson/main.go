// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a section of BENCH_hotpath.json (or any bench-results file),
// preserving the other sections. The file keeps a frozen "baseline"
// section (the pre-optimisation numbers) next to a regenerated "current"
// section so regressions are visible in review:
//
//	go test -bench WirePath -run '^$' -benchmem ./... | benchjson -label current -out BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// result holds one benchmark line's parsed metrics. Units outside the
// standard -benchmem set (anything reported via testing.B.ReportMetric or
// by harnesses like cmd/kmsim that emit bench-formatted lines with units
// such as events/s or peak-rss-B) land in Extra keyed by unit name.
type result struct {
	NsPerOp       float64            `json:"ns_per_op"`
	MBPerS        float64            `json:"mb_per_s,omitempty"`
	BytesPerOp    int64              `json:"bytes_per_op"`
	AllocsPerOp   int64              `json:"allocs_per_op"`
	Iterations    int64              `json:"iterations"`
	Extra         map[string]float64 `json:"extra,omitempty"`
	parsedAnyUnit bool
}

type section struct {
	Date    string            `json:"date"`
	Note    string            `json:"note,omitempty"`
	Results map[string]result `json:"results"`
}

func main() {
	label := flag.String("label", "current", "section of the JSON file to replace")
	out := flag.String("out", "BENCH_hotpath.json", "JSON file to update in place")
	note := flag.String("note", "", "free-form note stored with the section")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Benchmark lines on stdin")
		os.Exit(1)
	}

	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	sec := section{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Note:    *note,
		Results: results,
	}
	raw, err := json.MarshalIndent(sec, "  ", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc[*label] = raw

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s[%q]\n", len(results), *out, *label)
}

// parseBench extracts Benchmark lines of the form
//
//	BenchmarkName/sub-8  1000  1234 ns/op  56.78 MB/s  90 B/op  3 allocs/op
func parseBench(f *os.File) (map[string]result, error) {
	results := map[string]result{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Trim the -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r result
		r.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(val, 64)
				r.parsedAnyUnit = true
			case "MB/s":
				r.MBPerS, _ = strconv.ParseFloat(val, 64)
				r.parsedAnyUnit = true
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
				r.parsedAnyUnit = true
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
				r.parsedAnyUnit = true
			default:
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					continue
				}
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = f
				r.parsedAnyUnit = true
			}
		}
		if r.parsedAnyUnit {
			results[name] = r
		}
	}
	return results, sc.Err()
}
