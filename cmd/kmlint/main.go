// Command kmlint runs the project's static analyzer suite (internal/lint)
// over the named packages and reports findings as
//
//	file:line: [check] message
//
// exiting 1 when anything is found. It understands the same ./... pattern
// as the go tool, skipping testdata, vendor and hidden directories.
// Findings are suppressed with audited //kmlint:ignore directives — see
// internal/lint and the "Static invariants and kmlint" section of
// DESIGN.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/kompics/kompicsmessaging-go/internal/lint"
)

// jsonDiag is the -json wire form: one object per line, CI-annotation
// friendly. Suppressed findings appear with suppressed=true and the
// covering directive in ignored_by.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	IgnoredBy  string `json:"ignored_by,omitempty"`
}

func main() {
	checkFlag := flag.String("check", "", "run only this comma-separated subset of checks (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	jsonFlag := flag.Bool("json", false, "emit one JSON diagnostic per line (including suppressed findings with their covering directive)")
	auditFlag := flag.Bool("audit-ignores", false, "report kmlint:ignore directives that no longer suppress anything (full suite only)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kmlint [flags] [packages]\n\npackages use go-style patterns (default ./...)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checkFlag != "" {
		// With a partial suite, ignores for the skipped checks would all
		// look stale; unused auditing needs the full run.
		if *auditFlag {
			fmt.Fprintln(os.Stderr, "kmlint: -audit-ignores requires the full suite; drop -check")
			os.Exit(2)
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checkFlag, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "kmlint: unknown check %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmlint: %v\n", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "kmlint: no packages matched")
		os.Exit(2)
	}

	loader, err := lint.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(loader, dirs, analyzers, lint.RunOptions{
		ReportUnused:   *auditFlag,
		KeepSuppressed: *jsonFlag,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmlint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	relTo := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}
	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, d := range diags {
		d.Pos.Filename = relTo(d.Pos.Filename)
		if cwd != "" {
			d.IgnoredBy = strings.TrimPrefix(d.IgnoredBy, cwd+string(filepath.Separator))
		}
		if !d.Suppressed {
			findings++
		}
		if *jsonFlag {
			if err := enc.Encode(jsonDiag{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Check:      d.Check,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				IgnoredBy:  d.IgnoredBy,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "kmlint: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(d.String())
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "kmlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// expandPatterns resolves go-style package patterns to package directories
// (directories containing at least one .go file). Like the go tool, the
// recursive walk skips testdata, vendor, and dot- or underscore-prefixed
// directories.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if pat == "..." {
			root, recursive = ".", true
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			ok, err := hasGoFiles(root)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("no Go files in %s", root)
			}
			if err := add(root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if ok {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true, nil
		}
	}
	return false, nil
}
