// Command kmsoak is the soak + chaos harness: it composes the
// file-transfer, pingpong and relay workloads over a real loopback
// topology (TCP, UDP and UDT endpoints), runs a seeded fault schedule
// against it — rolling outages, write stalls, datagram blackholes,
// reconnect storms — and exits nonzero unless the liveness invariants
// hold at the end:
//
//   - zero leaked pooled buffers (bufpool accounting diff across the run)
//   - bounded queue depths (high-water ≤ the per-channel bound, and
//     fully drained once traffic stops)
//   - every injected outage recovered within the recovery budget, none
//     still down at the end
//   - no goroutine growth between quiesced checkpoints
//
// The schedule is deterministic per seed: -print-plan renders the full
// arm/remove timeline without running anything, and two runs with the
// same seed produce the identical plan (CI diffs them). Live metrics are
// exported via expvar and, with -metrics-addr, an HTTP endpoint serving
// the JSON snapshot at /metrics.
//
//	kmsoak -duration 30s -seed 7 -schedule rolling-outage
//	kmsoak -duration 10m -schedule mixed -metrics-addr 127.0.0.1:8125
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmsoak:", err)
	}
	os.Exit(code)
}

// inducedLeak pins a pooled buffer for the -induce leak regression: the
// zero-leak invariant must catch it and fail the run.
var inducedLeak []byte

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("kmsoak", flag.ContinueOnError)
	nodes := fs.Int("nodes", 3, "loopback nodes in the topology (min 2)")
	duration := fs.Duration("duration", 60*time.Second, "soak run length")
	seed := fs.Int64("seed", 1, "seed for schedule jitter, fault rolls and backoff")
	scheduleName := fs.String("schedule", "rolling-outage", "fault campaign: "+scheduleNames)
	basePort := fs.Int("base-port", 17000, "first port; each node takes two (TCP/UDP and UDT)")
	budget := fs.Duration("recovery-budget", 10*time.Second, "max allowed down→up recovery latency")
	policyName := fs.String("queue-policy", "reject", "transport queue policy: reject | drop-oldest | latest-value | deadline")
	maxPending := fs.Int("max-pending", 4096, "per-channel pending-queue bound (MaxPendingPerPeer)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/vars here (empty = off)")
	induce := fs.String("induce", "", "deliberately break an invariant: leak | outage (CI regression)")
	printPlan := fs.Bool("print-plan", false, "print the planned schedule event log and exit")
	verbose := fs.Bool("v", false, "print the executed event log and full metrics at the end")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *nodes < 2 {
		return 2, fmt.Errorf("-nodes must be at least 2")
	}

	policy, err := transport.PolicyByName(*policyName)
	if err != nil {
		return 2, err
	}
	if *maxPending <= 0 {
		return 2, fmt.Errorf("-max-pending must be positive")
	}

	targets := targetsOf(*basePort, *nodes)
	sched, err := buildSchedule(*scheduleName, targets, *duration)
	if err != nil {
		return 2, err
	}
	inj := faults.New(*seed)
	defer inj.Close()
	runner := faults.NewRunner(sched, inj, clock.Real{}, *seed)

	if *printPlan {
		fmt.Printf("# schedule=%s seed=%d nodes=%d duration=%v horizon=%v\n",
			*scheduleName, *seed, *nodes, *duration, runner.Horizon())
		fmt.Print(faults.FormatEvents(runner.Plan()))
		return 0, nil
	}

	// Baseline for the zero-leak gate: before any node draws a buffer.
	poolBaseline := bufpool.Account()

	reg := stats.NewRegistry()
	reg.PublishExpvar("kmsoak")
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		var srvWG sync.WaitGroup
		srvWG.Add(1)
		go func() {
			defer srvWG.Done()
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "kmsoak: metrics listener:", err)
			}
		}()
		defer srvWG.Wait()
		defer srv.Close()
	}

	fmt.Printf("kmsoak: %d nodes on 127.0.0.1:%d+, schedule=%s seed=%d duration=%v queue-policy=%s\n",
		*nodes, *basePort, *scheduleName, *seed, *duration, policy.Name())
	c, err := boot(clusterConfig{
		nodes: *nodes, basePort: *basePort, seed: *seed,
		inj: inj, reg: reg, duration: *duration + 15*time.Second,
		policy: policy, maxPending: *maxPending,
	})
	if err != nil {
		return 2, err
	}
	defer c.shutdown()

	switch *induce {
	case "":
	case "leak":
		//kmlint:ignore bufleak deliberate: -induce leak pins this buffer so the zero-leak gate must fail the run
		inducedLeak = bufpool.Get(4096)
	case "outage":
		// A permanent outage outside the schedule: the watcher sees the
		// down, recovery never comes, and the run must fail.
		for _, dest := range targets[1].Dests {
			inj.Add(faults.Spec{Op: faults.OpWrite, Action: faults.Reset, Dest: dest})
			inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse, Dest: dest})
		}
	default:
		return 2, fmt.Errorf("unknown -induce %q (leak or outage)", *induce)
	}

	// Let the workloads reach steady state, then take the quiesced
	// goroutine checkpoint the end of the run is compared against.
	time.Sleep(time.Second)
	c.quiesce()
	gBaseline := goroutineBaseline()

	monitor := newQueueMonitor(c, reg)
	monitor.start()
	runner.Start()
	fmt.Printf("kmsoak: schedule running, horizon %v\n", runner.Horizon().Round(time.Millisecond))

	started := time.Now()
	end := time.NewTimer(*duration)
	progress := time.NewTicker(10 * time.Second)
	defer progress.Stop()
wait:
	for {
		select {
		case <-end.C:
			break wait
		case <-progress.C:
			fmt.Printf("kmsoak: t+%v rings=%d transfers=%d queue-high-water=%d\n",
				time.Since(started).Round(time.Second),
				reg.Counter("relay_rings_total").Load(),
				reg.Counter("transfers_total").Load(),
				reg.Gauge("queue_high_water").Load())
		}
	}
	runner.Stop() // no-op when complete; clears stragglers otherwise

	// Wind down: stop self-restarting drivers, let in-flight windows
	// resolve, drain every component queue.
	c.stopTraffic()
	time.Sleep(500 * time.Millisecond)
	c.quiesce()
	monitor.halt()

	// The gates. Collect every violation, then report them all.
	var failures []error
	if err := monitor.check(*maxPending); err != nil {
		failures = append(failures, err)
	}
	expectOutages := *scheduleName == "rolling-outage" || *scheduleName == "storm" || *scheduleName == "mixed"
	if err := checkRecoveries(c, *budget, expectOutages); err != nil {
		failures = append(failures, err)
	}
	if err := checkGoroutines(gBaseline); err != nil {
		failures = append(failures, err)
	}

	summary(reg, runner, *verbose)
	dropReport(c, reg, policy.Name())

	// Shut everything down, then the zero-leak gate: after teardown every
	// pooled buffer must be home.
	c.shutdown()
	inj.Close()
	time.Sleep(200 * time.Millisecond)
	if err := checkBufpool(poolBaseline); err != nil {
		failures = append(failures, err)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "kmsoak: INVARIANT VIOLATED:", f)
		}
		return 1, fmt.Errorf("%d invariant(s) violated", len(failures))
	}
	fmt.Println("kmsoak: PASS — all invariants held")
	return 0, nil
}

// summary prints the run's vital signs: schedule completion, recovery
// distribution, workload volume, and (verbose) the executed event log
// plus the full metrics dump.
func summary(reg *stats.Registry, runner *faults.Runner, verbose bool) {
	events := runner.Events()
	fmt.Printf("kmsoak: schedule executed %d/%d events\n", len(events), len(runner.Plan()))
	rec := reg.Histogram("recovery_ns").Snapshot()
	if rec.Count > 0 {
		fmt.Printf("kmsoak: recoveries=%d p50=%v p99=%v p99.9=%v max=%v\n",
			rec.Count,
			time.Duration(rec.Quantile(0.50)).Round(time.Millisecond),
			time.Duration(rec.Quantile(0.99)).Round(time.Millisecond),
			time.Duration(rec.Quantile(0.999)).Round(time.Millisecond),
			time.Duration(rec.Max).Round(time.Millisecond))
	}
	for _, proto := range []wire.Transport{wire.TCP, wire.UDP, wire.UDT} {
		name := fmt.Sprintf("rtt_%s_ns", proto)
		if s := reg.Histogram(name).Snapshot(); s.Count > 0 {
			fmt.Printf("kmsoak: %s samples=%d p50=%v p99=%v\n", name, s.Count,
				time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
				time.Duration(s.Quantile(0.99)).Round(time.Microsecond))
		}
	}
	fmt.Printf("kmsoak: transfers=%d (%d bytes) relay rings=%d/%d\n",
		reg.Counter("transfers_total").Load(),
		reg.Counter("transfer_bytes_total").Load(),
		reg.Counter("relay_rings_total").Load(),
		reg.Counter("relay_sent_total").Load())
	if verbose {
		fmt.Println("--- schedule events ---")
		fmt.Print(faults.FormatEvents(events))
		fmt.Println("--- metrics ---")
		_ = reg.WriteText(os.Stdout)
	}
}

// dropReport prints the queue-policy drop accounting for the gate report:
// totals by reason summed over the cluster, and the telemetry workload's
// send/receive balance with the effective drop rate — the number the
// reject-vs-latest-value comparisons in EXPERIMENTS.md read.
func dropReport(c *cluster, reg *stats.Registry, policyName string) {
	var drops, telem transport.PolicyDrops
	for _, n := range c.nodes {
		t := n.net.DropStats()
		s := t.Sum()
		drops.Full += s.Full
		drops.Coalesced += s.Coalesced
		drops.Expired += s.Expired
		tc := t.PerClass[wire.ClassTelemetry]
		telem.Full += tc.Full
		telem.Coalesced += tc.Coalesced
		telem.Expired += tc.Expired
	}
	sent := reg.Counter("telemetry_sent_total").Load()
	recv := reg.Counter("telemetry_recv_total").Load()
	rate := 0.0
	if sent > 0 {
		rate = float64(telem.Total()) / float64(sent)
	}
	fmt.Printf("kmsoak: queue-policy=%s drops: full=%d coalesced=%d expired=%d\n",
		policyName, drops.Full, drops.Coalesced, drops.Expired)
	fmt.Printf("kmsoak: telemetry sent=%d recv=%d drop-rate=%.1f%%\n",
		sent, recv, rate*100)
}
