package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/filetransfer"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/pingpong"
	"github.com/kompics/kompicsmessaging-go/internal/relay"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// node is one middleware instance in the soak topology: a full Network
// component (TCP + UDP listeners at its port, UDT at port+1) plus its
// status watcher.
type node struct {
	index  int
	self   core.BasicAddress
	sys    *kompics.System
	net    *core.Network
	status *statusWatcher
}

// cluster is the whole loopback topology plus the workload drivers
// running over it.
type cluster struct {
	nodes []*node
	reg   *stats.Registry

	pingers   []*pingpong.Pinger
	xfer      *xferDriver
	relay     *relayDriver
	telemetry *telemetryDriver
}

// clusterConfig parameterises boot.
type clusterConfig struct {
	nodes    int
	basePort int
	seed     int64
	inj      *faults.Injector
	reg      *stats.Registry
	duration time.Duration
	// policy and maxPending configure every node's transport pending
	// queue (-queue-policy / -max-pending).
	policy     transport.QueuePolicy
	maxPending int
}

// targetsOf lists the schedule targets: per node, the wire destinations
// its peers dial — "host:port" for TCP/UDP, "host:port+1" for UDT.
func targetsOf(basePort, nodes int) []faults.Target {
	ts := make([]faults.Target, nodes)
	for i := 0; i < nodes; i++ {
		port := basePort + 2*i
		ts[i] = faults.Target{
			Name: fmt.Sprintf("node%d", i),
			Dests: []string{
				fmt.Sprintf("127.0.0.1:%d", port),
				fmt.Sprintf("127.0.0.1:%d", port+1),
			},
		}
	}
	return ts
}

// boot builds and starts the topology: every node listens on loopback,
// shares the fault injector (rules select their victims by destination
// address) and feeds the shared stats registry under a per-node prefix.
func boot(cfg clusterConfig) (*cluster, error) {
	reg := core.NewRegistry()
	if err := pingpong.Register(reg); err != nil {
		return nil, err
	}
	if err := relay.Register(reg); err != nil {
		return nil, err
	}
	if err := filetransfer.Register(reg); err != nil {
		return nil, err
	}

	c := &cluster{reg: cfg.reg}
	for i := 0; i < cfg.nodes; i++ {
		self := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", cfg.basePort+2*i))
		netDef, err := core.NewNetwork(core.NetworkConfig{
			Self:          self,
			Registry:      reg,
			Metrics:       cfg.reg,
			MetricsPrefix: fmt.Sprintf("node%d.", i),
			Transport: transport.Config{
				Faults: cfg.inj,
				// Channels must ride outages out, not give up: a huge dial
				// budget keeps them retrying (and keeps UDT channels from
				// falling back to TCP mid-campaign), and a short backoff
				// ceiling keeps recovery latency dominated by the outage
				// window rather than the last doubling.
				MaxDialAttempts:   1 << 20,
				RedialBackoffMax:  time.Second,
				BackoffSeed:       cfg.seed + int64(i),
				QueuePolicy:       cfg.policy,
				MaxPendingPerPeer: cfg.maxPending,
			},
		})
		if err != nil {
			return nil, err
		}
		sys := kompics.NewSystem()
		netComp := sys.Create(netDef)
		watcher := newStatusWatcher(cfg.reg, fmt.Sprintf("node%d.", i))
		watcherComp := sys.Create(watcher)
		kompics.MustConnect(netDef.StatusPort(), watcher.port)
		sys.Start(netComp)
		sys.Start(watcherComp)
		c.nodes = append(c.nodes, &node{
			index: i, self: self, sys: sys, net: netDef, status: watcher,
		})
	}
	for _, n := range c.nodes {
		n.sys.AwaitQuiescence()
		if n.net.Addr(core.TCP) == "" {
			c.shutdown()
			return nil, fmt.Errorf("node%d listeners did not come up", n.index)
		}
	}
	if err := c.startWorkloads(cfg); err != nil {
		c.shutdown()
		return nil, err
	}
	return c, nil
}

// startWorkloads composes the three traffic patterns of the paper's
// evaluation over the live topology:
//
//   - pingpong: control-plane probes node0→node1 over TCP, node0→last
//     over UDP, last→node0 over UDT — every wire protocol sees traffic
//     and every RTT feeds the shared histogram.
//   - filetransfer: a bulk stream node0→node1 over TCP, restarted for
//     the whole run — the data-plane load outages must not corrupt.
//   - relay: a routed ring over every node over TCP — multi-hop traffic
//     whose delivery requires every peer, so any outage shows up as a
//     delivery-rate dip.
func (c *cluster) startWorkloads(cfg clusterConfig) error {
	first, last := c.nodes[0], c.nodes[len(c.nodes)-1]

	const pingInterval = 50 * time.Millisecond
	// Probe for the whole run, then stop on their own: a finite count
	// lets the tail of the run quiesce without a stop channel.
	pingCount := int(cfg.duration/pingInterval) + 1
	pings := []struct {
		from, to *node
		proto    core.Transport
	}{
		{first, c.nodes[1%len(c.nodes)], core.TCP},
		{first, last, core.UDP},
		{last, first, core.UDT},
	}
	for _, p := range pings {
		ponger := pingpong.NewPonger(p.to.self)
		pongerComp := p.to.sys.Create(ponger)
		kompics.MustConnect(p.to.net.Port(), ponger.NetPort())
		p.to.sys.Start(pongerComp)

		pinger := pingpong.NewPinger(pingpong.PingerConfig{
			Self: p.from.self, Dest: p.to.self, Proto: p.proto,
			Interval: pingInterval, Count: pingCount,
		})
		pingerComp := p.from.sys.Create(pinger)
		kompics.MustConnect(p.from.net.Port(), pinger.NetPort())
		coll := newRTTCollector(c.reg, fmt.Sprintf("rtt_%s_ns", p.proto))
		collComp := p.from.sys.Create(coll)
		kompics.MustConnect(pinger.Port(), coll.port)
		p.from.sys.Start(pingerComp)
		p.from.sys.Start(collComp)
		coll.comp.SelfTrigger(startPings{})
		c.pingers = append(c.pingers, pinger)
	}

	// Bulk transfers node0 → node1 over TCP, restarted on completion.
	dataset, err := filetransfer.NewDataset(cfg.seed, 256<<10)
	if err != nil {
		return err
	}
	xferTo := c.nodes[1%len(c.nodes)]
	recv := filetransfer.NewReceiver()
	recvComp := xferTo.sys.Create(recv)
	kompics.MustConnect(xferTo.net.Port(), recv.NetPort())
	xferTo.sys.Start(recvComp)
	sender, err := filetransfer.NewSender(filetransfer.SenderConfig{
		Self: first.self, Dest: xferTo.self, Proto: core.TCP,
		Data: dataset, WindowSize: 64,
	})
	if err != nil {
		return err
	}
	senderComp := first.sys.Create(sender)
	kompics.MustConnect(first.net.Port(), sender.NetPort())
	c.xfer = newXferDriver(c.reg)
	xferComp := first.sys.Create(c.xfer)
	kompics.MustConnect(sender.Port(), c.xfer.port)
	first.sys.Start(senderComp)
	first.sys.Start(xferComp)
	c.xfer.comp.SelfTrigger(startXfer{})

	// Routed ring through every node, originating and terminating at
	// node0.
	var hops []core.Address
	for _, n := range c.nodes[1:] {
		hops = append(hops, n.self)
	}
	hops = append(hops, first.self)
	for _, n := range c.nodes {
		fwd := relay.NewForwarder(n.self)
		fwdComp := n.sys.Create(fwd)
		kompics.MustConnect(n.net.Port(), fwd.NetPort())
		n.sys.Start(fwdComp)
	}
	c.relay = newRelayDriver(c.reg, first.self, hops)
	relayComp := first.sys.Create(c.relay)
	kompics.MustConnect(first.net.Port(), c.relay.netPort)
	first.sys.Start(relayComp)
	c.relay.comp.SelfTrigger(relayTick{})

	// QoS telemetry node0 → node1 over TCP: keyed, deadlined sensor
	// updates at a rate an outage window cannot absorb, so the configured
	// queue policy decides what reaches the wire. Under -queue-policy
	// latest-value the coalesce counters climb while the freshest value
	// per key still arrives; under reject the queue-full counters climb
	// instead.
	telemTo := c.nodes[1%len(c.nodes)]
	tr := newTelemetryReceiver(c.reg)
	trComp := telemTo.sys.Create(tr)
	kompics.MustConnect(telemTo.net.Port(), tr.netPort)
	telemTo.sys.Start(trComp)
	c.telemetry = newTelemetryDriver(c.reg, first.self, telemTo.self)
	tdComp := first.sys.Create(c.telemetry)
	kompics.MustConnect(first.net.Port(), c.telemetry.netPort)
	first.sys.Start(tdComp)
	c.telemetry.comp.SelfTrigger(telemetryTick{})
	return nil
}

// stopTraffic tells the self-restarting drivers to wind down; the finite
// pingers stop on their own.
func (c *cluster) stopTraffic() {
	c.xfer.stopped.Store(true)
	c.relay.stopped.Store(true)
	c.telemetry.stopped.Store(true)
}

// quiesce drains every node's component queues.
func (c *cluster) quiesce() {
	for _, n := range c.nodes {
		n.sys.AwaitQuiescence()
	}
}

// shutdown stops every system (network teardown closes endpoints and
// recycles stage buffers).
func (c *cluster) shutdown() {
	for _, n := range c.nodes {
		n.sys.Shutdown()
	}
}

// --- status watcher ---------------------------------------------------------

// outage is one down→up cycle on a channel, measured purely from the
// injectable-clock timestamps the status events carry.
type outage struct {
	Proto    core.Transport
	Dest     string
	DownAt   time.Time
	Recovery time.Duration // zero while unrecovered
}

// statusWatcher subscribes to one node's NetworkStatusPort and turns the
// event stream into recovery-latency measurements — the KompicsTesting
// idea of asserting over event streams, applied to supervision.
type statusWatcher struct {
	port *kompics.Port
	reg  *stats.Registry
	pfx  string

	mu      sync.Mutex
	pending map[string]time.Time // dest key -> DownAt
	outages []outage
}

func newStatusWatcher(reg *stats.Registry, pfx string) *statusWatcher {
	return &statusWatcher{reg: reg, pfx: pfx, pending: make(map[string]time.Time)}
}

func (w *statusWatcher) Init(ctx *kompics.Context) {
	w.port = ctx.Requires(core.NetworkStatusPort)
	ctx.Subscribe(w.port, core.ChannelDown{}, func(e kompics.Event) {
		ev := e.(core.ChannelDown)
		w.mu.Lock()
		w.pending[key(ev.Proto, ev.Dest)] = ev.At
		w.mu.Unlock()
	})
	ctx.Subscribe(w.port, core.ChannelUp{}, func(e kompics.Event) {
		ev := e.(core.ChannelUp)
		k := key(ev.Proto, ev.Dest)
		w.mu.Lock()
		downAt, ok := w.pending[k]
		if ok {
			delete(w.pending, k)
			rec := ev.At.Sub(downAt)
			w.outages = append(w.outages, outage{
				Proto: ev.Proto, Dest: ev.Dest, DownAt: downAt, Recovery: rec,
			})
			w.reg.Histogram("recovery_ns").Record(rec.Nanoseconds())
		}
		w.mu.Unlock()
	})
	ctx.Subscribe(w.port, core.ChannelRetry{}, func(kompics.Event) {})
	ctx.Subscribe(w.port, core.TransportFallback{}, func(e kompics.Event) {
		w.reg.Counter(w.pfx + "fallbacks_total").Inc()
	})
}

func key(p core.Transport, dest string) string { return fmt.Sprintf("%v|%s", p, dest) }

// results returns the recovered outages and any still-pending downs.
func (w *statusWatcher) results() (recovered []outage, unrecovered []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	recovered = append(recovered, w.outages...)
	for k := range w.pending {
		unrecovered = append(unrecovered, k)
	}
	return recovered, unrecovered
}

// --- workload drivers -------------------------------------------------------

// rttCollector feeds RTT samples into the shared histogram and kicks the
// pinger off (StartPinging must be triggered from a connected component).
type rttCollector struct {
	port *kompics.Port
	comp *kompics.Component
	reg  *stats.Registry
	name string
}

type startPings struct{}

func newRTTCollector(reg *stats.Registry, name string) *rttCollector {
	return &rttCollector{reg: reg, name: name}
}

func (r *rttCollector) Init(ctx *kompics.Context) {
	r.comp = ctx.Component()
	r.port = ctx.Requires(pingpong.PingPort)
	ctx.Subscribe(r.port, pingpong.RTTSample{}, func(e kompics.Event) {
		r.reg.Histogram(r.name).Record(e.(pingpong.RTTSample).RTT.Nanoseconds())
	})
	ctx.SubscribeSelf(startPings{}, func(kompics.Event) {
		ctx.Trigger(pingpong.StartPinging{}, r.port)
	})
}

// xferDriver restarts the bulk transfer every time it completes, until
// told to stop. The sender acknowledges failed chunks too (at-most-once),
// so transfers complete sender-side even through an outage window.
type xferDriver struct {
	port    *kompics.Port
	comp    *kompics.Component
	reg     *stats.Registry
	next    uint32
	stopped atomic.Bool
}

type startXfer struct{}

func newXferDriver(reg *stats.Registry) *xferDriver { return &xferDriver{reg: reg} }

func (d *xferDriver) Init(ctx *kompics.Context) {
	d.comp = ctx.Component()
	d.port = ctx.Requires(filetransfer.TransferPort)
	begin := func() {
		d.next++
		ctx.Trigger(filetransfer.StartTransfer{TransferID: d.next}, d.port)
	}
	ctx.Subscribe(d.port, filetransfer.Complete{}, func(e kompics.Event) {
		d.reg.Counter("transfers_total").Inc()
		d.reg.Counter("transfer_bytes_total").Add(uint64(e.(filetransfer.Complete).Bytes))
		if !d.stopped.Load() {
			begin()
		}
	})
	ctx.SubscribeSelf(startXfer{}, func(kompics.Event) { begin() })
}

// relayDriver sends a routed ring message at a fixed interval and counts
// the ones that make it all the way around.
type relayDriver struct {
	netPort *kompics.Port
	comp    *kompics.Component
	reg     *stats.Registry
	self    core.Address
	hops    []core.Address
	stopped atomic.Bool
}

type relayTick struct{}

const relayInterval = 100 * time.Millisecond

func newRelayDriver(reg *stats.Registry, self core.Address, hops []core.Address) *relayDriver {
	return &relayDriver{reg: reg, self: self, hops: hops}
}

// telemetryDriver emits bursts of keyed sensor updates as ClassTelemetry
// DataMsgs: telemetryKeys keys per burst, one burst per telemetryInterval,
// each update carrying a latest-value key ("sensorN") and an absolute
// deadline telemetryDeadline out. While the destination channel rides an
// outage the bursts pile into the pending queue faster than any backlog
// drain can clear, which is exactly the overload the queue policies
// differ on.
type telemetryDriver struct {
	netPort *kompics.Port
	comp    *kompics.Component
	reg     *stats.Registry
	self    core.Address
	dest    core.Address
	seq     uint64
	stopped atomic.Bool
}

type telemetryTick struct{}

const (
	telemetryInterval = 20 * time.Millisecond
	telemetryKeys     = 8
	telemetryDeadline = 500 * time.Millisecond
)

func newTelemetryDriver(reg *stats.Registry, self, dest core.Address) *telemetryDriver {
	return &telemetryDriver{reg: reg, self: self, dest: dest}
}

func (d *telemetryDriver) Init(ctx *kompics.Context) {
	d.comp = ctx.Component()
	d.netPort = ctx.Requires(core.NetworkPort)
	ctx.SubscribeSelf(telemetryTick{}, func(kompics.Event) {
		if d.stopped.Load() {
			return
		}
		deadline := ctx.System().Clock().Now().Add(telemetryDeadline).UnixNano()
		for i := 0; i < telemetryKeys; i++ {
			d.seq++
			msg := &core.DataMsg{
				Hdr: core.NewHeader(d.self, d.dest, core.TCP).WithQoS(core.QoS{
					Class:    core.ClassTelemetry,
					Key:      fmt.Sprintf("sensor%d", i),
					Deadline: deadline,
				}),
				Payload: []byte(fmt.Sprintf("reading %d", d.seq)),
			}
			d.reg.Counter("telemetry_sent_total").Inc()
			ctx.Trigger(msg, d.netPort)
		}
		ctx.System().Clock().AfterFunc(telemetryInterval, func() {
			d.comp.SelfTrigger(telemetryTick{})
		})
	})
}

// telemetryReceiver counts telemetry-class DataMsgs arriving at the sink
// node; the gate report compares the count against telemetry_sent_total
// to compute the effective drop rate.
type telemetryReceiver struct {
	netPort *kompics.Port
	reg     *stats.Registry
}

func newTelemetryReceiver(reg *stats.Registry) *telemetryReceiver {
	return &telemetryReceiver{reg: reg}
}

func (r *telemetryReceiver) Init(ctx *kompics.Context) {
	r.netPort = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(r.netPort, (*core.Msg)(nil), func(e kompics.Event) {
		m, ok := e.(*core.DataMsg)
		if !ok || m.Hdr.QoS.Class != core.ClassTelemetry {
			return
		}
		r.reg.Counter("telemetry_recv_total").Inc()
	})
}

func (d *relayDriver) Init(ctx *kompics.Context) {
	d.comp = ctx.Component()
	d.netPort = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(d.netPort, (*core.Msg)(nil), func(e kompics.Event) {
		m, ok := e.(*relay.RoutedMsg)
		if !ok {
			return
		}
		if _, more := m.Hdr.Advance(); !more {
			d.reg.Counter("relay_rings_total").Inc()
		}
	})
	ctx.SubscribeSelf(relayTick{}, func(kompics.Event) {
		if d.stopped.Load() {
			return
		}
		msg, err := relay.NewRoutedMsg(d.self, d.hops, core.TCP, []byte("soak-ring"))
		if err == nil {
			d.reg.Counter("relay_sent_total").Inc()
			ctx.Trigger(msg, d.netPort)
		}
		ctx.System().Clock().AfterFunc(relayInterval, func() {
			d.comp.SelfTrigger(relayTick{})
		})
	})
}
