package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
)

// The liveness gates. Each check returns nil or a description of the
// violation; main collects them all (a failing run reports every broken
// invariant, not just the first) and exits nonzero if any tripped.

// checkBufpool diffs the pool accounting across the whole run: after
// every system has shut down, each Get must have settled its Put. A
// nonzero total is a leaked pooled buffer somewhere on the wire path.
// Teardown releases are asynchronous (channel run loops fail their
// queues as they unwind), so the gate polls briefly before ruling.
func checkBufpool(before bufpool.Accounting) error {
	deadline := time.Now().Add(3 * time.Second)
	after := bufpool.Account()
	for after.Outstanding != before.Outstanding && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		after = bufpool.Account()
	}
	leaked := after.Outstanding - before.Outstanding
	if leaked == 0 {
		return nil
	}
	detail := ""
	for i, c := range after.Classes {
		var b bufpool.ClassAccount
		if i < len(before.Classes) {
			b = before.Classes[i]
		}
		if d := c.Outstanding - b.Outstanding; d != 0 {
			detail += fmt.Sprintf(" class[%d]=%+d", c.Size, d)
		}
	}
	if d := after.Buffers.Outstanding - before.Buffers.Outstanding; d != 0 {
		detail += fmt.Sprintf(" buffers=%+d", d)
	}
	return fmt.Errorf("buffer leak: %+d pooled buffers outstanding after shutdown (%s)",
		leaked, detail)
}

// goroutineBaseline samples the goroutine count until it is stable
// across consecutive reads — the quiesced-checkpoint count transient
// teardown goroutines must settle back to.
func goroutineBaseline() int {
	stable, last := 0, runtime.NumGoroutine()
	for i := 0; i < 50 && stable < 3; i++ {
		time.Sleep(50 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last {
			stable++
		} else {
			stable, last = 0, n
		}
	}
	return last
}

// checkGoroutines waits for the goroutine count to return to the
// baseline (with a small slack for runtime-internal helpers), retrying
// while connection teardown drains. Growth that never settles is a
// goroutine leak — a channel run loop or read loop that outlived its
// connection.
func checkGoroutines(baseline int) error {
	const slack = 8
	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline+slack && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline+slack {
		return fmt.Errorf("goroutine growth: %d at checkpoint, baseline %d (+%d slack)",
			n, baseline, slack)
	}
	return nil
}

// queueMonitor samples every node's outgoing-registry depth while the
// run is hot and keeps the high-water mark; the invariant is that no
// single channel queue ever exceeded the transport's configured bound
// (the overflow policy is fail-fast, so deeper means the bound broke).
type queueMonitor struct {
	c    *cluster
	reg  *stats.Registry
	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	maxDepth int
}

func newQueueMonitor(c *cluster, reg *stats.Registry) *queueMonitor {
	return &queueMonitor{c: c, reg: reg, stop: make(chan struct{})}
}

func (m *queueMonitor) start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				depth := 0
				for _, n := range m.c.nodes {
					if d := n.net.QueueStats().MaxDepth; d > depth {
						depth = d
					}
				}
				m.mu.Lock()
				if depth > m.maxDepth {
					m.maxDepth = depth
				}
				m.mu.Unlock()
				m.reg.Gauge("queue_high_water").Set(int64(m.highWater()))
			}
		}
	}()
}

func (m *queueMonitor) halt() {
	close(m.stop)
	m.wg.Wait()
}

func (m *queueMonitor) highWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxDepth
}

// check enforces the bounded-queue invariant against the per-channel
// bound, and that the queues fully drained by the end of the run.
func (m *queueMonitor) check(bound int) error {
	if hw := m.highWater(); hw > bound {
		return fmt.Errorf("queue depth: high-water %d exceeds per-channel bound %d", hw, bound)
	}
	for _, n := range m.c.nodes {
		if q := n.net.QueueStats(); q.Queued != 0 {
			return fmt.Errorf("queue drain: node%d still has %d queued messages after traffic stopped",
				n.index, q.Queued)
		}
	}
	return nil
}

// checkRecoveries enforces the outage gates across every node's watcher:
// no channel still down at the end of the run, and every measured
// down→up latency within the budget (the p99.9 gate — at soak scale the
// worst observed recovery IS the tail).
func checkRecoveries(c *cluster, budget time.Duration, expectOutages bool) error {
	total := 0
	var worst time.Duration
	for _, n := range c.nodes {
		recovered, unrecovered := n.status.results()
		if len(unrecovered) > 0 {
			return fmt.Errorf("unrecovered outage: node%d channels still down: %v",
				n.index, unrecovered)
		}
		for _, o := range recovered {
			total++
			if o.Recovery > worst {
				worst = o.Recovery
			}
			if o.Recovery > budget {
				return fmt.Errorf("recovery budget: node%d %v %s took %v (budget %v)",
					n.index, o.Proto, o.Dest, o.Recovery.Round(time.Millisecond), budget)
			}
		}
	}
	if expectOutages && total == 0 {
		return fmt.Errorf("no outage observed: the schedule injected faults but no channel ever went down — harness wiring broken")
	}
	return nil
}
