package main

import (
	"fmt"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// Schedule construction: each named campaign is sized to the run
// duration so the last fault clears by about 70% of the run — the tail
// is the recovery window, and an outage still unrecovered when the run
// ends is an invariant violation, not a scheduling artifact.

// scheduleNames lists the -schedule values, for usage text.
const scheduleNames = "rolling-outage, stalls, blackhole, storm, mixed"

// buildSchedule sizes the named campaign over targets for a run of d.
func buildSchedule(name string, targets []faults.Target, d time.Duration) (*faults.Schedule, error) {
	// active is the window faults may occupy; the rest is recovery tail.
	active := d * 7 / 10
	warmup := clampDur(d/20, 200*time.Millisecond, 2*time.Second)
	s := faults.NewSchedule(name)
	switch name {
	case "rolling-outage":
		s.Add(rollingOutage(targets, warmup, active))
	case "stalls":
		s.Add(faults.StallWindow{
			Targets: targets[:1],
			Start:   warmup,
			Len:     clampDur(active/4, 200*time.Millisecond, 3*time.Second),
			Jitter:  warmup / 2,
		})
	case "blackhole":
		s.Add(faults.BlackholeWindow{
			Targets: targets,
			Proto:   wire.UDP,
			Start:   warmup,
			Len:     clampDur(active/3, 300*time.Millisecond, 5*time.Second),
			Jitter:  warmup / 2,
		})
	case "storm":
		s.Add(faults.ReconnectStorm{
			Targets: targets,
			Start:   warmup,
			Pulses:  5,
			Gap:     clampDur(active/12, 100*time.Millisecond, time.Second),
			Jitter:  warmup / 2,
		})
	case "mixed":
		s.Add(rollingOutage(targets, warmup, active/2))
		s.Add(faults.BlackholeWindow{
			Targets: targets[:1],
			Proto:   wire.UDP,
			Start:   warmup + active/2,
			Len:     clampDur(active/6, 200*time.Millisecond, 2*time.Second),
			Jitter:  warmup / 2,
		})
		s.Add(faults.ReconnectStorm{
			Targets: targets[len(targets)-1:],
			Start:   warmup + active*3/4,
			Pulses:  3,
			Gap:     clampDur(active/20, 100*time.Millisecond, 500*time.Millisecond),
			Jitter:  warmup / 4,
		})
	default:
		return nil, fmt.Errorf("unknown schedule %q (%s)", name, scheduleNames)
	}
	return s, nil
}

// rollingOutage fits one pass of full-peer outages into window, starting
// at start: each peer is down for ~60% of its slot, with the remainder
// split between recovery gap and jitter.
func rollingOutage(targets []faults.Target, start, window time.Duration) faults.RollingOutage {
	slot := window / time.Duration(len(targets))
	outageLen := clampDur(slot*6/10, 200*time.Millisecond, 5*time.Second)
	gap := clampDur(slot*2/10, 100*time.Millisecond, 2*time.Second)
	return faults.RollingOutage{
		Targets:   targets,
		Start:     start,
		OutageLen: outageLen,
		Gap:       gap,
		Jitter:    gap / 2,
	}
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
