// Command kmping measures control-message round-trip times between two
// KompicsMessaging nodes over a chosen transport — the real-network
// counterpart of the paper's "ping" components (§V-A).
//
// Run a responder on one host and a prober on another:
//
//	kmping -listen 0.0.0.0:9000
//	kmping -listen 0.0.0.0:9001 -dest 10.0.0.2:9000 -proto udt -count 20
//
// Note: each node binds its TCP and UDP port, plus UDP port+1 for UDT.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/pingpong"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kmping:", err)
		os.Exit(1)
	}
}

func parseProto(s string) (core.Transport, error) {
	switch strings.ToLower(s) {
	case "tcp":
		return core.TCP, nil
	case "udp":
		return core.UDP, nil
	case "udt":
		return core.UDT, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (tcp, udp or udt)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kmping", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9000", "this node's address (ip:port)")
	dest := fs.String("dest", "", "peer address to probe; empty = respond only")
	protoName := fs.String("proto", "tcp", "transport for probes: tcp, udp or udt")
	count := fs.Int("count", 10, "number of probes")
	interval := fs.Duration("interval", 100*time.Millisecond, "probe interval")
	if err := fs.Parse(args); err != nil {
		return err
	}

	self, err := core.ParseAddress(*listen)
	if err != nil {
		return err
	}
	proto, err := parseProto(*protoName)
	if err != nil {
		return err
	}

	reg := core.NewRegistry()
	if err := pingpong.Register(reg); err != nil {
		return err
	}
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
	if err != nil {
		return err
	}
	sys := kompics.NewSystem()
	defer sys.Shutdown()
	netComp := sys.Create(netDef)

	ponger := pingpong.NewPonger(self)
	pongerComp := sys.Create(ponger)
	kompics.MustConnect(netDef.Port(), ponger.NetPort())
	sys.Start(netComp)
	sys.Start(pongerComp)

	if *dest == "" {
		fmt.Printf("responding on %s (TCP/UDP %d, UDT %d); ctrl-c to stop\n",
			self, self.Port(), self.Port()+1)
		select {} // respond until interrupted
	}

	destAddr, err := core.ParseAddress(*dest)
	if err != nil {
		return err
	}
	pinger := pingpong.NewPinger(pingpong.PingerConfig{
		Self: self, Dest: destAddr, Proto: proto,
		Interval: *interval, Count: *count,
	})
	pingerComp := sys.Create(pinger)
	kompics.MustConnect(netDef.Port(), pinger.NetPort())

	printer := &rttPrinter{done: make(chan struct{}), want: *count}
	printerComp := sys.Create(printer)
	kompics.MustConnect(pinger.Port(), printer.port)
	sys.Start(pingerComp)
	sys.Start(printerComp)
	printer.comp.SelfTrigger(startProbing{})

	timeout := time.Duration(*count)*(*interval) + 30*time.Second
	select {
	case <-printer.done:
	case <-time.After(timeout):
		fmt.Printf("timed out: %d of %d pongs received\n", printer.got, *count)
	}
	sys.AwaitQuiescence()
	s := pinger.RTTs()
	if s.N() > 0 {
		fmt.Printf("--- %s over %v: %d probes, mean %v ± %v (95%% CI) ---\n",
			destAddr, proto, s.N(),
			time.Duration(s.Mean()*float64(time.Second)).Round(time.Microsecond),
			time.Duration(s.CI95()*float64(time.Second)).Round(time.Microsecond))
	}
	return nil
}

// rttPrinter prints each sample as it arrives and signals completion.
type rttPrinter struct {
	port *kompics.Port
	comp *kompics.Component
	want int
	got  int
	done chan struct{}
}

type startProbing struct{}

func (p *rttPrinter) Init(ctx *kompics.Context) {
	p.comp = ctx.Component()
	p.port = ctx.Requires(pingpong.PingPort)
	ctx.Subscribe(p.port, pingpong.RTTSample{}, func(e kompics.Event) {
		s := e.(pingpong.RTTSample)
		fmt.Printf("seq=%d rtt=%v\n", s.Seq, s.RTT.Round(time.Microsecond))
		p.got++
		if p.got == p.want {
			close(p.done)
		}
	})
	ctx.SubscribeSelf(startProbing{}, func(kompics.Event) {
		ctx.Trigger(pingpong.StartPinging{}, p.port)
	})
}
