// Command kmsim runs netsim campaigns at scale and reports event-core
// throughput in go-bench format, so the output pipes straight through
// cmd/benchjson into BENCH_sim.json:
//
//	kmsim -endpoints 100000 -hosts 1000 -clock heap  | benchjson -label baseline -out BENCH_sim.json
//	kmsim -endpoints 100000 -hosts 1000 -clock wheel | benchjson -label current  -out BENCH_sim.json
//
// Each run executes -phases consecutive campaign phases on one simulator
// instance and reports, per the whole run: wall-clock ns per event,
// events/s, peak RSS (VmHWM), RSS growth between the first and last phase
// (the pooled event/message paths should hold this near zero), the
// live-timer high-water mark, and the deterministic trace hash.
//
// With -verify the same campaign is run on both event cores and the tool
// exits non-zero unless their trace hashes and results are identical —
// the determinism gate CI runs at small scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/netsim"
)

func main() {
	var (
		endpoints   = flag.Int("endpoints", 100000, "logical endpoints (vnodes)")
		hosts       = flag.Int("hosts", 1000, "simulated hosts the vnodes share")
		topology    = flag.String("topology", "gossip", "host graph: gossip|star|tree")
		degree      = flag.Int("degree", 8, "gossip out-degree")
		fanout      = flag.Int("fanout", 4, "tree fanout")
		msgSize     = flag.Int("msgsize", 256, "payload bytes per message")
		phase       = flag.Duration("phase", 10*time.Second, "virtual duration of one phase")
		phases      = flag.Int("phases", 2, "consecutive phases to run")
		seed        = flag.Int64("seed", 1, "campaign seed")
		clockImpl   = flag.String("clock", "wheel", "event core: wheel|heap")
		interval    = flag.Duration("interval", 2*time.Second, "mean per-endpoint send interval")
		flashAt     = flag.Duration("flash-at", 2*time.Second, "flash crowd start offset")
		flashLen    = flag.Duration("flash-len", 2*time.Second, "flash crowd length (0 disables)")
		flashX      = flag.Float64("flash-factor", 10, "flash crowd rate multiplier")
		churn       = flag.Duration("churn", 100*time.Millisecond, "mean time between endpoint up/down flips (0 disables)")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "per-endpoint heartbeat period")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-message retransmission timeout")
		detectors   = flag.Int("detectors", 8, "per-peer failure detectors per endpoint (0 disables)")
		detInterval = flag.Duration("detector-interval", 250*time.Millisecond, "failure-detector evaluation period")
		verify      = flag.Bool("verify", false, "run both event cores and require identical traces")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kmsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "kmsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := netsim.CampaignConfig{
		Endpoints: *endpoints,
		Hosts:     *hosts,
		Topology:  *topology,
		Degree:    *degree,
		Fanout:    *fanout,
		MsgSize:   *msgSize,
		Phase:     *phase,
		Seed:      *seed,
		Clock:     *clockImpl,
		Arrival: netsim.ArrivalConfig{
			MeanInterval: *interval,
			FlashAt:      *flashAt,
			FlashLen:     *flashLen,
			FlashFactor:  *flashX,
		},
		Churn:             netsim.ChurnConfig{MeanFlipInterval: *churn},
		HeartbeatInterval: *heartbeat,
		RetransTimeout:    *timeout,
		DetectorFanout:    *detectors,
		DetectorInterval:  *detInterval,
	}

	if *verify {
		os.Exit(runVerify(cfg, *phases))
	}

	run(cfg, *phases)
}

// run executes one campaign and prints the bench line.
func run(cfg netsim.CampaignConfig, phases int) {
	c := netsim.NewCampaign(cfg)
	eff := c.Config()

	var total netsim.CampaignResult
	var firstPhaseRSS int64
	start := time.Now()
	for p := 0; p < phases; p++ {
		r := c.RunPhase()
		total.Events += r.Events
		total.Sends += r.Sends
		total.Delivered += r.Delivered
		total.ForwardHops += r.ForwardHops
		total.LocalReflects += r.LocalReflects
		total.Timeouts += r.Timeouts
		total.HeartbeatTicks += r.HeartbeatTicks
		total.ChurnFlips += r.ChurnFlips
		total.DetectorTicks += r.DetectorTicks
		total.Suspicions += r.Suspicions
		total.DeliveredDown += r.DeliveredDown
		total.PendingAtEnd = r.PendingAtEnd
		total.LiveTimerHWM = r.LiveTimerHWM
		total.TraceHash = r.TraceHash
		if p == 0 {
			firstPhaseRSS = peakRSSBytes()
		}
		fmt.Fprintf(os.Stderr, "kmsim: phase %d: %d events, %d sends, %d delivered, pending=%d, rss=%dB\n",
			p+1, r.Events, r.Sends, r.Delivered, r.PendingAtEnd, peakRSSBytes())
		// Collect at the phase boundary so each phase starts from a settled
		// heap: RSS growth between phases then measures real footprint
		// growth (leaked pools, retained buffers) rather than where the
		// previous phase happened to sit in its GC cycle.
		runtime.GC()
	}
	wall := time.Since(start)

	rss := peakRSSBytes()
	growthPct := 0.0
	if firstPhaseRSS > 0 {
		growthPct = 100 * float64(rss-firstPhaseRSS) / float64(firstPhaseRSS)
	}
	evPerSec := float64(total.Events) / wall.Seconds()
	nsPerEvent := float64(wall.Nanoseconds()) / float64(total.Events)

	name := fmt.Sprintf("BenchmarkSimCampaign/topo=%s/endpoints=%d/hosts=%d/clock=%s",
		eff.Topology, eff.Endpoints, eff.Hosts, eff.Clock)
	fmt.Printf("%s \t%d\t%.1f ns/op\t%.0f events/s\t%d peak-rss-B\t%.2f rss-growth-pct\t%d timer-hwm\n",
		name, total.Events, nsPerEvent, evPerSec, rss, growthPct, total.LiveTimerHWM)

	fmt.Fprintf(os.Stderr,
		"kmsim: %s: %d events in %v wall (%.0f events/s)\n"+
			"kmsim: sends=%d delivered=%d forwards=%d reflects=%d timeouts=%d hb=%d detect=%d suspect=%d churn=%d deadletter=%d\n"+
			"kmsim: timer-hwm=%d pending-at-end=%d peak-rss=%dB rss-growth=%.2f%% trace-hash=%#016x\n",
		eff.Clock, total.Events, wall.Round(time.Millisecond), evPerSec,
		total.Sends, total.Delivered, total.ForwardHops, total.LocalReflects,
		total.Timeouts, total.HeartbeatTicks, total.DetectorTicks, total.Suspicions,
		total.ChurnFlips, total.DeliveredDown,
		total.LiveTimerHWM, total.PendingAtEnd, rss, growthPct, total.TraceHash)
}

// runVerify runs the identical campaign on both event cores and compares
// their behaviour event for event (via the rolling trace hash and the
// phase results).
func runVerify(cfg netsim.CampaignConfig, phases int) int {
	results := map[string][]netsim.CampaignResult{}
	for _, impl := range []string{"wheel", "heap"} {
		c := cfg
		c.Clock = impl
		camp := netsim.NewCampaign(c)
		for p := 0; p < phases; p++ {
			results[impl] = append(results[impl], camp.RunPhase())
		}
	}
	for p := 0; p < phases; p++ {
		w, h := results["wheel"][p], results["heap"][p]
		if w != h {
			fmt.Fprintf(os.Stderr, "kmsim: VERIFY FAILED: phase %d differs\nwheel: %+v\nheap:  %+v\n", p+1, w, h)
			return 1
		}
	}
	last := results["wheel"][phases-1]
	fmt.Fprintf(os.Stderr, "kmsim: verify ok: %d phases identical on both cores, trace-hash=%#016x, %d events\n",
		phases, last.TraceHash, last.Events)
	return 0
}

// peakRSSBytes reads the process's high-water resident set size from
// /proc/self/status (VmHWM). On platforms without procfs it falls back to
// the Go runtime's view of memory obtained from the OS.
func peakRSSBytes() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
