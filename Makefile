# KompicsMessaging-go build targets.
#
#   make check          vet + kmlint + build + race-enabled tests (the CI gate)
#   make test           plain test run (tier-1 verify)
#   make test-faults    fault-injection and supervision suite, race-enabled
#                       and repeated to shake out nondeterminism
#   make lint           kmlint static analyzer suite only
#   make bench-hotpath  rerun the wire hot-path benchmarks and refresh the
#                       "current" section of BENCH_hotpath.json
#   make bench-udt      rerun the UDT data-path benchmarks and refresh the
#                       "current" section of BENCH_udt.json
#   make bench          full benchmark sweep (figures + ablations)

GO ?= go

HOTPATH_PKGS = ./internal/core/ ./internal/transport/
HOTPATH_OUT  = BENCH_hotpath.out
UDT_OUT      = BENCH_udt.out
SHARD_PKGS   = ./internal/transport/ ./internal/core/
SHARD_OUT    = BENCH_shard.out

FAULT_PKGS = ./internal/faults/ ./internal/transport/ ./internal/core/ ./internal/udt/
FAULT_RUN  = 'Fault|Supervis|Fallback|Overflow|PeerDeath|Revival|Stall|Blackhole|Backoff|Status|StopThenRestart'

.PHONY: check test test-faults build vet lint bench bench-hotpath bench-udt bench-shard

check:
	$(GO) vet ./... && $(GO) run ./cmd/kmlint ./... && $(GO) build ./... && $(GO) test -race ./...

test:
	$(GO) build ./... && $(GO) test ./...

test-faults:
	$(GO) test -race -count=3 -run $(FAULT_RUN) $(FAULT_PKGS)

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/kmlint ./...

bench-hotpath:
	$(GO) test -bench WirePath -run '^$$' -benchmem $(HOTPATH_PKGS) | tee $(HOTPATH_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_hotpath.json < $(HOTPATH_OUT)
	@rm -f $(HOTPATH_OUT)

bench-udt:
	$(GO) test -bench UDT -run '^$$' -benchmem -benchtime 2s . | tee $(UDT_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_udt.json < $(UDT_OUT)
	@rm -f $(UDT_OUT)

# bench-shard reruns the fan-out scaling benchmarks (BenchmarkFanoutSend /
# BenchmarkFanoutSendNetwork) and refreshes the "current" section of
# BENCH_shard.json; the frozen "baseline" section holds the pre-sharding
# numbers. The benchmarks sweep GOMAXPROCS 1/4/NumCPU themselves.
bench-shard:
	$(GO) test -bench FanoutSend -run '^$$' -benchmem $(SHARD_PKGS) | tee $(SHARD_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_shard.json < $(SHARD_OUT)
	@rm -f $(SHARD_OUT)

bench:
	$(GO) test -bench . -benchmem
