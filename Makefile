# KompicsMessaging-go build targets.
#
#   make check          vet + kmlint + build + race-enabled tests (the CI gate)
#   make test           plain test run (tier-1 verify)
#   make lint           kmlint static analyzer suite only
#   make bench-hotpath  rerun the wire hot-path benchmarks and refresh the
#                       "current" section of BENCH_hotpath.json
#   make bench-udt      rerun the UDT data-path benchmarks and refresh the
#                       "current" section of BENCH_udt.json
#   make bench          full benchmark sweep (figures + ablations)

GO ?= go

HOTPATH_PKGS = ./internal/core/ ./internal/transport/
HOTPATH_OUT  = BENCH_hotpath.out
UDT_OUT      = BENCH_udt.out

.PHONY: check test build vet lint bench bench-hotpath bench-udt

check:
	$(GO) vet ./... && $(GO) run ./cmd/kmlint ./... && $(GO) build ./... && $(GO) test -race ./...

test:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/kmlint ./...

bench-hotpath:
	$(GO) test -bench WirePath -run '^$$' -benchmem $(HOTPATH_PKGS) | tee $(HOTPATH_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_hotpath.json < $(HOTPATH_OUT)
	@rm -f $(HOTPATH_OUT)

bench-udt:
	$(GO) test -bench UDT -run '^$$' -benchmem -benchtime 2s . | tee $(UDT_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_udt.json < $(UDT_OUT)
	@rm -f $(UDT_OUT)

bench:
	$(GO) test -bench . -benchmem
