# KompicsMessaging-go build targets.
#
#   make check          vet + kmlint + build + race-enabled tests (the CI gate)
#   make test           plain test run (tier-1 verify)
#   make test-faults    fault-injection and supervision suite, race-enabled
#                       and repeated to shake out nondeterminism
#   make lint           kmlint static analyzer suite (with -audit-ignores)
#   make bench-hotpath  rerun the wire hot-path benchmarks and refresh the
#                       "current" section of BENCH_hotpath.json
#   make bench-udt      rerun the UDT data-path benchmarks and refresh the
#                       "current" section of BENCH_udt.json
#   make sim-campaign   run the large-scale netsim campaign on both event
#                       cores and refresh BENCH_sim.json
#   make bench          full benchmark sweep (figures + ablations)

GO ?= go

HOTPATH_PKGS = ./internal/core/ ./internal/transport/
HOTPATH_OUT  = BENCH_hotpath.out
UDT_OUT      = BENCH_udt.out
SHARD_PKGS   = ./internal/transport/ ./internal/core/
SHARD_OUT    = BENCH_shard.out
FANIN_PKGS   = ./internal/transport/ ./internal/core/
FANIN_OUT    = BENCH_fanin.out

FAULT_PKGS = ./internal/faults/ ./internal/transport/ ./internal/core/ ./internal/udt/
FAULT_RUN  = 'Fault|Supervis|Fallback|Overflow|PeerDeath|Revival|Stall|Blackhole|Backoff|Status|StopThenRestart'

RECV_PKGS = ./internal/transport/ ./internal/core/ ./internal/vnet/
RECV_RUN  = 'RecvOrder|DecodeStage|VNodeFanin'

.PHONY: check test test-faults test-recv build vet lint bench bench-hotpath bench-udt bench-shard bench-fanin sim-campaign

check:
	$(GO) vet ./... && $(GO) run ./cmd/kmlint -audit-ignores ./... && $(GO) build ./... && $(GO) test -race ./...

test:
	$(GO) build ./... && $(GO) test ./...

test-faults:
	$(GO) test -race -count=3 -run $(FAULT_RUN) $(FAULT_PKGS)

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the full analyzer suite with stale-suppression auditing: an
# //kmlint:ignore directive that no longer suppresses anything fails the
# run with its audited reason printed.
lint:
	$(GO) run ./cmd/kmlint -audit-ignores ./...

bench-hotpath:
	$(GO) test -bench WirePath -run '^$$' -benchmem $(HOTPATH_PKGS) | tee $(HOTPATH_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_hotpath.json < $(HOTPATH_OUT)
	@rm -f $(HOTPATH_OUT)

bench-udt:
	$(GO) test -bench UDT -run '^$$' -benchmem -benchtime 2s . | tee $(UDT_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_udt.json < $(UDT_OUT)
	@rm -f $(UDT_OUT)

# bench-shard reruns the fan-out scaling benchmarks (BenchmarkFanoutSend /
# BenchmarkFanoutSendNetwork) and refreshes the "current" section of
# BENCH_shard.json; the frozen "baseline" section holds the pre-sharding
# numbers. The benchmarks sweep GOMAXPROCS 1/4/NumCPU themselves.
bench-shard:
	$(GO) test -bench FanoutSend -run '^$$' -benchmem $(SHARD_PKGS) | tee $(SHARD_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_shard.json < $(SHARD_OUT)
	@rm -f $(SHARD_OUT)

# bench-fanin reruns the fan-in scaling benchmarks (BenchmarkFaninReceive /
# BenchmarkFaninReceiveNetwork) and refreshes the "current" section of
# BENCH_fanin.json; the frozen "baseline" section holds the numbers from
# before the striped inbound registry + parallel decode stage. The
# benchmarks sweep GOMAXPROCS 1/4/NumCPU themselves.
bench-fanin:
	$(GO) test -bench FaninReceive -run '^$$' -benchmem $(FANIN_PKGS) | tee $(FANIN_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_fanin.json < $(FANIN_OUT)
	@rm -f $(FANIN_OUT)

# sim-campaign runs the scaled netsim campaign on both event cores and
# refreshes BENCH_sim.json: the binary-heap core lands in the "baseline"
# section, the timer-wheel core in "current". A small-scale determinism
# gate runs first — the same seed must produce identical event traces and
# phase results on both cores. Scale through the environment:
#
#   make sim-campaign SIM_SCALE=1000000 SIM_HOSTS=10000 SIM_DURATION=2s
#
SIM_SCALE    ?= 100000
SIM_HOSTS    ?= 1000
SIM_TOPO     ?= gossip
SIM_SEED     ?= 1
SIM_DURATION ?= 10s
SIM_BIN      = ./kmsim.bin
SIM_OUT      = BENCH_sim.out
SIM_FLAGS    = -endpoints $(SIM_SCALE) -hosts $(SIM_HOSTS) -topology $(SIM_TOPO) \
               -seed $(SIM_SEED) -phase $(SIM_DURATION)

sim-campaign:
	$(GO) build -o $(SIM_BIN) ./cmd/kmsim
	$(SIM_BIN) -verify -endpoints 2000 -hosts 100 -topology $(SIM_TOPO) -seed $(SIM_SEED) -phase 2s
	$(SIM_BIN) $(SIM_FLAGS) -clock heap | tee $(SIM_OUT)
	$(GO) run ./cmd/benchjson -label baseline -out BENCH_sim.json < $(SIM_OUT)
	$(SIM_BIN) $(SIM_FLAGS) -clock wheel | tee $(SIM_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_sim.json < $(SIM_OUT)
	@rm -f $(SIM_OUT) $(SIM_BIN)

# test-recv runs the receive-path property suite (per-peer inbound FIFO,
# at-most-once delivery, zero-leak teardown) race-enabled and repeated.
test-recv:
	$(GO) test -race -count=3 -run $(RECV_RUN) $(RECV_PKGS)

bench:
	$(GO) test -bench . -benchmem
