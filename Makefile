# KompicsMessaging-go build targets.
#
#   make check          vet + kmlint + build + race-enabled tests (the CI gate)
#   make test           plain test run (tier-1 verify)
#   make lint           kmlint static analyzer suite only
#   make bench-hotpath  rerun the wire hot-path benchmarks and refresh the
#                       "current" section of BENCH_hotpath.json
#   make bench          full benchmark sweep (figures + ablations)

GO ?= go

HOTPATH_PKGS = ./internal/core/ ./internal/transport/
HOTPATH_OUT  = BENCH_hotpath.out

.PHONY: check test build vet lint bench bench-hotpath

check:
	$(GO) vet ./... && $(GO) run ./cmd/kmlint ./... && $(GO) build ./... && $(GO) test -race ./...

test:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/kmlint ./...

bench-hotpath:
	$(GO) test -bench WirePath -run '^$$' -benchmem $(HOTPATH_PKGS) | tee $(HOTPATH_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_hotpath.json < $(HOTPATH_OUT)
	@rm -f $(HOTPATH_OUT)

bench:
	$(GO) test -bench . -benchmem
