# KompicsMessaging-go build targets.
#
#   make check          vet + kmlint + build + race-enabled tests (the CI gate)
#   make test           plain test run (tier-1 verify)
#   make test-faults    fault-injection and supervision suite, race-enabled
#                       and repeated to shake out nondeterminism
#   make lint           kmlint static analyzer suite (with -audit-ignores)
#   make bench-hotpath  rerun the wire hot-path benchmarks and refresh the
#                       "current" section of BENCH_hotpath.json
#   make bench-udt      rerun the UDT data-path benchmarks and refresh the
#                       "current" section of BENCH_udt.json
#   make bench          full benchmark sweep (figures + ablations)

GO ?= go

HOTPATH_PKGS = ./internal/core/ ./internal/transport/
HOTPATH_OUT  = BENCH_hotpath.out
UDT_OUT      = BENCH_udt.out
SHARD_PKGS   = ./internal/transport/ ./internal/core/
SHARD_OUT    = BENCH_shard.out
FANIN_PKGS   = ./internal/transport/ ./internal/core/
FANIN_OUT    = BENCH_fanin.out

FAULT_PKGS = ./internal/faults/ ./internal/transport/ ./internal/core/ ./internal/udt/
FAULT_RUN  = 'Fault|Supervis|Fallback|Overflow|PeerDeath|Revival|Stall|Blackhole|Backoff|Status|StopThenRestart'

RECV_PKGS = ./internal/transport/ ./internal/core/ ./internal/vnet/
RECV_RUN  = 'RecvOrder|DecodeStage|VNodeFanin'

.PHONY: check test test-faults test-recv build vet lint bench bench-hotpath bench-udt bench-shard bench-fanin

check:
	$(GO) vet ./... && $(GO) run ./cmd/kmlint -audit-ignores ./... && $(GO) build ./... && $(GO) test -race ./...

test:
	$(GO) build ./... && $(GO) test ./...

test-faults:
	$(GO) test -race -count=3 -run $(FAULT_RUN) $(FAULT_PKGS)

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the full analyzer suite with stale-suppression auditing: an
# //kmlint:ignore directive that no longer suppresses anything fails the
# run with its audited reason printed.
lint:
	$(GO) run ./cmd/kmlint -audit-ignores ./...

bench-hotpath:
	$(GO) test -bench WirePath -run '^$$' -benchmem $(HOTPATH_PKGS) | tee $(HOTPATH_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_hotpath.json < $(HOTPATH_OUT)
	@rm -f $(HOTPATH_OUT)

bench-udt:
	$(GO) test -bench UDT -run '^$$' -benchmem -benchtime 2s . | tee $(UDT_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_udt.json < $(UDT_OUT)
	@rm -f $(UDT_OUT)

# bench-shard reruns the fan-out scaling benchmarks (BenchmarkFanoutSend /
# BenchmarkFanoutSendNetwork) and refreshes the "current" section of
# BENCH_shard.json; the frozen "baseline" section holds the pre-sharding
# numbers. The benchmarks sweep GOMAXPROCS 1/4/NumCPU themselves.
bench-shard:
	$(GO) test -bench FanoutSend -run '^$$' -benchmem $(SHARD_PKGS) | tee $(SHARD_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_shard.json < $(SHARD_OUT)
	@rm -f $(SHARD_OUT)

# bench-fanin reruns the fan-in scaling benchmarks (BenchmarkFaninReceive /
# BenchmarkFaninReceiveNetwork) and refreshes the "current" section of
# BENCH_fanin.json; the frozen "baseline" section holds the numbers from
# before the striped inbound registry + parallel decode stage. The
# benchmarks sweep GOMAXPROCS 1/4/NumCPU themselves.
bench-fanin:
	$(GO) test -bench FaninReceive -run '^$$' -benchmem $(FANIN_PKGS) | tee $(FANIN_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_fanin.json < $(FANIN_OUT)
	@rm -f $(FANIN_OUT)

# test-recv runs the receive-path property suite (per-peer inbound FIFO,
# at-most-once delivery, zero-leak teardown) race-enabled and repeated.
test-recv:
	$(GO) test -race -count=3 -run $(RECV_RUN) $(RECV_PKGS)

bench:
	$(GO) test -bench . -benchmem
