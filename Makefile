# KompicsMessaging-go build targets.
#
#   make check          vet + kmlint + build + race-enabled tests (the CI gate)
#   make test           plain test run (tier-1 verify)
#   make test-faults    fault-injection and supervision suite, race-enabled
#                       and repeated to shake out nondeterminism
#   make lint           kmlint static analyzer suite (with -audit-ignores)
#   make bench-hotpath  rerun the wire hot-path benchmarks and refresh the
#                       "current" section of BENCH_hotpath.json
#   make bench-udt      rerun the UDT data-path benchmarks and refresh the
#                       "current" section of BENCH_udt.json
#   make sim-campaign   run the large-scale netsim campaign on both event
#                       cores and refresh BENCH_sim.json
#   make soak           run the kmsoak chaos harness over real loopback
#                       sockets (exit nonzero if any liveness gate trips)
#   make bench          full benchmark sweep (figures + ablations)

GO ?= go

HOTPATH_PKGS = ./internal/core/ ./internal/transport/
HOTPATH_OUT  = BENCH_hotpath.out
UDT_OUT      = BENCH_udt.out
SHARD_PKGS   = ./internal/transport/ ./internal/core/
SHARD_OUT    = BENCH_shard.out
FANIN_PKGS   = ./internal/transport/ ./internal/core/
FANIN_OUT    = BENCH_fanin.out

FAULT_PKGS = ./internal/faults/ ./internal/transport/ ./internal/core/ ./internal/udt/
FAULT_RUN  = 'Fault|Supervis|Fallback|Overflow|PeerDeath|Revival|Stall|Blackhole|Backoff|Status|StopThenRestart'

RECV_PKGS = ./internal/transport/ ./internal/core/ ./internal/vnet/
RECV_RUN  = 'RecvOrder|DecodeStage|VNodeFanin'

QOS_PKGS = ./internal/transport/ ./internal/core/ ./internal/data/
QOS_RUN  = 'QoS'
QOS_OUT  = BENCH_qos.out

.PHONY: check test test-faults test-recv test-qos build vet lint bench bench-hotpath bench-udt bench-shard bench-fanin bench-qos sim-campaign soak soak-smoke

check:
	$(GO) vet ./... && $(GO) run ./cmd/kmlint -audit-ignores ./... && $(GO) build ./... && $(GO) test -race ./...

test:
	$(GO) build ./... && $(GO) test ./...

test-faults:
	$(GO) test -race -count=3 -run $(FAULT_RUN) $(FAULT_PKGS)

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the full analyzer suite with stale-suppression auditing: an
# //kmlint:ignore directive that no longer suppresses anything fails the
# run with its audited reason printed.
lint:
	$(GO) run ./cmd/kmlint -audit-ignores ./...

bench-hotpath:
	$(GO) test -bench WirePath -run '^$$' -benchmem $(HOTPATH_PKGS) | tee $(HOTPATH_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_hotpath.json < $(HOTPATH_OUT)
	@rm -f $(HOTPATH_OUT)

bench-udt:
	$(GO) test -bench UDT -run '^$$' -benchmem -benchtime 2s . | tee $(UDT_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_udt.json < $(UDT_OUT)
	@rm -f $(UDT_OUT)

# bench-shard reruns the fan-out scaling benchmarks (BenchmarkFanoutSend /
# BenchmarkFanoutSendNetwork) and refreshes the "current" section of
# BENCH_shard.json; the frozen "baseline" section holds the pre-sharding
# numbers. The benchmarks sweep GOMAXPROCS 1/4/NumCPU themselves.
bench-shard:
	$(GO) test -bench FanoutSend -run '^$$' -benchmem $(SHARD_PKGS) | tee $(SHARD_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_shard.json < $(SHARD_OUT)
	@rm -f $(SHARD_OUT)

# bench-fanin reruns the fan-in scaling benchmarks (BenchmarkFaninReceive /
# BenchmarkFaninReceiveNetwork) and refreshes the "current" section of
# BENCH_fanin.json; the frozen "baseline" section holds the numbers from
# before the striped inbound registry + parallel decode stage. The
# benchmarks sweep GOMAXPROCS 1/4/NumCPU themselves.
bench-fanin:
	$(GO) test -bench FaninReceive -run '^$$' -benchmem $(FANIN_PKGS) | tee $(FANIN_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_fanin.json < $(FANIN_OUT)
	@rm -f $(FANIN_OUT)

# sim-campaign runs the scaled netsim campaign on both event cores and
# refreshes BENCH_sim.json: the binary-heap core lands in the "baseline"
# section, the timer-wheel core in "current". A small-scale determinism
# gate runs first — the same seed must produce identical event traces and
# phase results on both cores. Scale through the environment:
#
#   make sim-campaign SIM_SCALE=1000000 SIM_HOSTS=10000 SIM_DURATION=2s
#
SIM_SCALE    ?= 100000
SIM_HOSTS    ?= 1000
SIM_TOPO     ?= gossip
SIM_SEED     ?= 1
SIM_DURATION ?= 10s
SIM_BIN      = ./kmsim.bin
SIM_OUT      = BENCH_sim.out
SIM_FLAGS    = -endpoints $(SIM_SCALE) -hosts $(SIM_HOSTS) -topology $(SIM_TOPO) \
               -seed $(SIM_SEED) -phase $(SIM_DURATION)

sim-campaign:
	$(GO) build -o $(SIM_BIN) ./cmd/kmsim
	$(SIM_BIN) -verify -endpoints 2000 -hosts 100 -topology $(SIM_TOPO) -seed $(SIM_SEED) -phase 2s
	$(SIM_BIN) $(SIM_FLAGS) -clock heap | tee $(SIM_OUT)
	$(GO) run ./cmd/benchjson -label baseline -out BENCH_sim.json < $(SIM_OUT)
	$(SIM_BIN) $(SIM_FLAGS) -clock wheel | tee $(SIM_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_sim.json < $(SIM_OUT)
	@rm -f $(SIM_OUT) $(SIM_BIN)

# soak runs the kmsoak chaos harness: real TCP/UDT/UDP loopback nodes
# under a seeded fault campaign, gated on the liveness invariants (zero
# leaked buffers, bounded + drained queues, every outage recovered in
# budget, no goroutine growth). Scale through the environment:
#
#   make soak SOAK_DURATION=10m SOAK_SCHEDULE=mixed SOAK_NODES=5
#
SOAK_DURATION  ?= 60s
SOAK_SEED      ?= 1
SOAK_SCHEDULE  ?= rolling-outage
SOAK_NODES     ?= 3
SOAK_BASE_PORT ?= 17000
SOAK_FLAGS     = -duration $(SOAK_DURATION) -seed $(SOAK_SEED) \
                 -schedule $(SOAK_SCHEDULE) -nodes $(SOAK_NODES) \
                 -base-port $(SOAK_BASE_PORT)

soak:
	$(GO) run ./cmd/kmsoak $(SOAK_FLAGS)

# soak-smoke is the CI slice of the soak: a short rolling-outage run
# that must pass, plan determinism (same seed twice -> identical event
# log), and the induced-failure regressions (a deliberate buffer leak
# and a permanent outage must each make the harness exit nonzero).
soak-smoke:
	$(GO) build -o ./kmsoak.bin ./cmd/kmsoak
	./kmsoak.bin -print-plan $(SOAK_FLAGS) > soak-plan-a.txt
	./kmsoak.bin -print-plan $(SOAK_FLAGS) > soak-plan-b.txt
	diff soak-plan-a.txt soak-plan-b.txt
	./kmsoak.bin $(SOAK_FLAGS) -duration 15s
	! ./kmsoak.bin $(SOAK_FLAGS) -duration 8s -nodes 2 -base-port 17100 -induce leak
	! ./kmsoak.bin $(SOAK_FLAGS) -duration 8s -nodes 2 -base-port 17200 -induce outage
	@rm -f ./kmsoak.bin soak-plan-a.txt soak-plan-b.txt

# test-recv runs the receive-path property suite (per-peer inbound FIFO,
# at-most-once delivery, zero-leak teardown) race-enabled and repeated.
test-recv:
	$(GO) test -race -count=3 -run $(RECV_RUN) $(RECV_PKGS)

# test-qos runs the QoS / queue-policy suite (header wire compatibility,
# per-(peer,class) FIFO properties, value-of-update shedding, deadline
# reconnect drain, drop-rate reward) race-enabled and repeated.
test-qos:
	$(GO) test -race -count=3 -run $(QOS_RUN) $(QOS_PKGS)

# bench-qos reruns the queue-policy overload benchmarks (saturated-channel
# push cost per policy; steady-state drops must be alloc-free) and
# refreshes the "current" section of BENCH_qos.json.
bench-qos:
	$(GO) test -bench QueuePolicy -run '^$$' -benchmem ./internal/transport/ | tee $(QOS_OUT)
	$(GO) run ./cmd/benchjson -label current -out BENCH_qos.json < $(QOS_OUT)
	@rm -f $(QOS_OUT)

bench:
	$(GO) test -bench . -benchmem
