// Benchmarks regenerating every figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md §6.
//
// Figure benchmarks wrap the internal/bench harness (virtual time: a
// "120-second" learner run costs milliseconds of wall clock). Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured commentary.
package repro_test

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bench"
	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/filetransfer"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
	"github.com/kompics/kompicsmessaging-go/internal/rl"
	"github.com/kompics/kompicsmessaging-go/internal/udt"
)

// --- figures -------------------------------------------------------------------

// BenchmarkFigure1 regenerates the selection-ratio distributions (fig. 1):
// 160,000 selections per policy per target, summarised over episode and
// wire windows.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure1(int64(i + 1))
		if len(rows) != 16 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// benchLearnerFigure runs one learner figure per iteration.
func benchLearnerFigure(b *testing.B, gen func(int64) ([]bench.LearnerSeries, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		series, err := gen(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFigure2 regenerates the pattern-vs-probabilistic learner
// comparison (fig. 2): four 60-second virtual-time runs.
func BenchmarkFigure2(b *testing.B) { benchLearnerFigure(b, bench.Figure2) }

// BenchmarkFigure4 regenerates the matrix-backend learner run (fig. 4).
func BenchmarkFigure4(b *testing.B) { benchLearnerFigure(b, bench.Figure4) }

// BenchmarkFigure5 regenerates the model-based learner run (fig. 5).
func BenchmarkFigure5(b *testing.B) { benchLearnerFigure(b, bench.Figure5) }

// BenchmarkFigure6 regenerates the approximation-backend learner run
// (fig. 6).
func BenchmarkFigure6(b *testing.B) { benchLearnerFigure(b, bench.Figure6) }

// BenchmarkFigure8 regenerates the control-latency experiment (fig. 8)
// across all four setups and five scenarios.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure8(bench.Fig8Options{
			Pings:  15,
			Warmup: 20 * time.Second,
			Seed:   int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure9 regenerates the throughput-vs-RTT experiment (fig. 9)
// with the paper's 395 MB dataset and its ≥10-runs RSE stopping rule.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure9(bench.Fig9Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- ablations -------------------------------------------------------------------

// BenchmarkPatternSelector measures the per-message cost of pattern
// selection — the paper argues patterns must stay cheap because they sit
// on the data path.
func BenchmarkPatternSelector(b *testing.B) {
	sel := data.NewPatternSelection(data.MustRatio(3, 100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sel.Select()
	}
}

// BenchmarkRandomSelector measures the per-message cost of Bernoulli
// selection.
func BenchmarkRandomSelector(b *testing.B) {
	sel := data.NewRandomSelection(data.MustRatio(3, 100), rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sel.Select()
	}
}

// BenchmarkSerialization measures the codec pipeline on a 65 kB message,
// with and without the compression stage (paper: Snappy by default; here
// DEFLATE on incompressible data, the paper's worst case).
func BenchmarkSerialization(b *testing.B) {
	payload := make([]byte, 65<<10)
	rand.New(rand.NewSource(1)).Read(payload)
	msg := &core.DataMsg{
		Hdr: core.NewHeader(
			core.MustParseAddress("10.0.0.1:1"),
			core.MustParseAddress("10.0.0.2:2"),
			core.TCP,
		),
		Payload: payload,
	}
	reg := core.NewRegistry()

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		var buf writerBuffer
		for i := 0; i < b.N; i++ {
			buf.reset()
			if err := reg.Encode(&buf, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode+flate", func(b *testing.B) {
		comp := codec.NewFlate(-1)
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		var buf writerBuffer
		for i := 0; i < b.N; i++ {
			buf.reset()
			if err := reg.Encode(&buf, msg); err != nil {
				b.Fatal(err)
			}
			if _, err := comp.Compress(buf.data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// writerBuffer is a trivial reusable byte sink.
type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
func (w *writerBuffer) reset() { w.data = w.data[:0] }

// BenchmarkKompicsThroughput measures component-event throughput for
// several MaxEvents settings — the paper's throughput/fairness knob
// (§II-A).
func BenchmarkKompicsThroughput(b *testing.B) {
	for _, maxEvents := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("maxEvents=%d", maxEvents), func(b *testing.B) {
			sys := kompics.NewSystem(kompics.WithMaxEvents(maxEvents))
			defer sys.Shutdown()

			pt := kompics.NewPortType(fmt.Sprintf("bench-%d", maxEvents)).
				Request(benchEvent{}).
				Indication(benchAck{})

			var wg sync.WaitGroup
			echo := &benchEcho{pt: pt}
			echoComp := sys.Create(echo)
			sink := &benchSink{pt: pt, wg: &wg}
			sinkComp := sys.Create(sink)
			kompics.MustConnect(echo.port, sink.port)
			sys.Start(echoComp)
			sys.Start(sinkComp)

			b.ResetTimer()
			wg.Add(b.N)
			for i := 0; i < b.N; i++ {
				sink.inject(benchEvent{})
			}
			wg.Wait()
		})
	}
}

type benchEvent struct{}
type benchAck struct{}

type benchEcho struct {
	pt   *kompics.PortType
	port *kompics.Port
}

func (e *benchEcho) Init(ctx *kompics.Context) {
	e.port = ctx.Provides(e.pt)
	ctx.Subscribe(e.port, benchEvent{}, func(kompics.Event) {
		ctx.Trigger(benchAck{}, e.port)
	})
}

type benchSink struct {
	pt   *kompics.PortType
	wg   *sync.WaitGroup
	port *kompics.Port
	comp *kompics.Component
	ctx  *kompics.Context
}

type benchInject struct{ e kompics.Event }

func (s *benchSink) Init(ctx *kompics.Context) {
	s.ctx = ctx
	s.comp = ctx.Component()
	s.port = ctx.Requires(s.pt)
	ctx.Subscribe(s.port, benchAck{}, func(kompics.Event) { s.wg.Done() })
	ctx.SubscribeSelf(benchInject{}, func(e kompics.Event) {
		ctx.Trigger(e.(benchInject).e, s.port)
	})
}

func (s *benchSink) inject(e kompics.Event) { s.comp.SelfTrigger(benchInject{e: e}) }

// BenchmarkUDTLoopback measures the real userspace UDT implementation's
// stream throughput over the OS loopback.
func BenchmarkUDTLoopback(b *testing.B) {
	l, err := udt.Listen("127.0.0.1:0", udt.Config{MaxRate: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64<<10)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	client, err := udt.Dial(l.Addr().String(), udt.Config{MaxRate: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	chunk := make([]byte, 64<<10)
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write(chunk); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	<-timeAfterClose(client, done)
}

func timeAfterClose(c interface{ Close() error }, done chan struct{}) chan struct{} {
	c.Close()
	return done
}

// BenchmarkUDTBulkTransfer measures a sustained large transfer end to end:
// each op streams 8 MiB client→server over loopback and waits for the
// server's one-byte receipt, so the number includes retransmission, ACK
// cadence and receive-side reassembly — the §V-C bulk-data path.
func BenchmarkUDTBulkTransfer(b *testing.B) {
	const size = 8 << 20
	l, err := udt.Listen("127.0.0.1:0", udt.Config{MaxRate: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 256<<10)
		for {
			left := size
			for left > 0 {
				n, err := conn.Read(buf)
				if err != nil {
					return
				}
				left -= n
			}
			if _, err := conn.Write(buf[:1]); err != nil {
				return
			}
		}
	}()
	client, err := udt.Dial(l.Addr().String(), udt.Config{MaxRate: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	chunk := make([]byte, 256<<10)
	receipt := make([]byte, 1)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for sent := 0; sent < size; sent += len(chunk) {
			if _, err := client.Write(chunk); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := io.ReadFull(client, receipt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	<-timeAfterClose(client, done)
}

// BenchmarkLearnerBackends measures learning-step cost for the three
// value backends (the matrix backend pays for its 55-cell table scans).
func BenchmarkLearnerBackends(b *testing.B) {
	model := func(s rl.State, a rl.Action) rl.State {
		sp := int(s) + int(a) - 2
		if sp < 0 {
			sp = 0
		}
		if sp > 10 {
			sp = 10
		}
		return rl.State(sp)
	}
	backends := []struct {
		name string
		mk   func() rl.Estimator
	}{
		{"matrix", func() rl.Estimator { return rl.NewMatrix(11, 5) }},
		{"model", func() rl.Estimator { return rl.NewModelBased(11, model) }},
		{"approx", func() rl.Estimator { return rl.NewApprox(11, model) }},
	}
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			l, err := rl.NewSarsa(rl.Config{
				States: 11, Actions: 5,
				Alpha: 0.5, Gamma: 0.5, Lambda: 0.85,
				EpsMax: 0.3, EpsMin: 0.1, EpsDecay: 0.01,
				Estimator: be.mk(),
				Rand:      rand.New(rand.NewSource(1)),
			})
			if err != nil {
				b.Fatal(err)
			}
			s := rl.State(5)
			a := l.Start(s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s = model(s, a)
				a = l.Step(float64(10-int(s)), s)
			}
		})
	}
}

// BenchmarkSimTransfer measures simulator event throughput: one 395 MB
// TCP transfer on the EU2US path per iteration (~6080 message events).
func BenchmarkSimTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTransfer(netsim.SetupEU2US, core.TCP, 395<<20, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Throughput <= 0 {
			b.Fatal("no throughput")
		}
	}
}

// BenchmarkDatasetReadAt measures the synthetic dataset generator (it must
// outpace every simulated link to never be the bottleneck in examples).
func BenchmarkDatasetReadAt(b *testing.B) {
	d, err := filetransfer.NewDataset(1, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadAt(buf, int64(i)*int64(len(buf))%(1<<29)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterceptorEnqueueRelease measures the DATA interceptor's
// per-message overhead on the hot path.
func BenchmarkInterceptorEnqueueRelease(b *testing.B) {
	clk := newFakeClock()
	ic, err := data.NewInterceptor(data.InterceptorConfig{
		PSP:            data.NewPatternSelection(data.Even),
		PRP:            data.StaticRatio{R: data.Even},
		Clock:          clk,
		MaxOutstanding: 1,
		Send:           func(core.Transport, *data.Item) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	ic.Start()
	item := &data.Item{Size: 65 << 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.Enqueue(item)
		ic.OnSent(core.TCP)
		ic.OnSent(core.UDT)
	}
}

// fakeClock is a minimal clock for hot-path benchmarks (timers never
// fire).
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (f *fakeClock) Now() time.Time { return f.t }
func (f *fakeClock) AfterFunc(time.Duration, func()) clock.Timer {
	return noopTimer{}
}

type noopTimer struct{}

func (noopTimer) Stop() bool { return true }
